#include "serve/line_protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/tc_tree.h"
#include "core/tc_tree_query.h"
#include "obs/trace.h"
#include "test_util.h"

namespace tcf {
namespace {

using testing::MakeFigureOneNetwork;

// ---------------------------------------------------------------- requests

TEST(LineProtocolTest, RequestRoundTrip) {
  const std::vector<Request> requests = [] {
    std::vector<Request> r(6);
    r[0].kind = Request::Kind::kPing;
    r[1].kind = Request::Kind::kStats;
    r[2].kind = Request::Kind::kQuit;
    r[3].kind = Request::Kind::kReload;
    r[3].reload_path = "/tmp/rebuilt.idx";
    r[4].kind = Request::Kind::kQuery;
    r[4].query_line = "0.25;i1,i3";
    r[5].kind = Request::Kind::kBatch;
    r[5].batch_size = 128;
    return r;
  }();
  for (const Request& request : requests) {
    const std::string wire = EncodeRequest(request);
    auto parsed = ParseRequest(wire);
    ASSERT_TRUE(parsed.ok()) << wire << ": " << parsed.status();
    EXPECT_EQ(parsed->kind, request.kind) << wire;
    EXPECT_EQ(parsed->query_line, request.query_line) << wire;
    EXPECT_EQ(parsed->reload_path, request.reload_path) << wire;
    EXPECT_EQ(parsed->batch_size, request.batch_size) << wire;
  }
}

TEST(LineProtocolTest, ParseBatchHeader) {
  auto one = ParseRequest("BATCH 1");
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->kind, Request::Kind::kBatch);
  EXPECT_EQ(one->batch_size, 1u);

  auto limit = ParseRequest("BATCH 16384");  // kMaxBatchLines, inclusive
  ASSERT_TRUE(limit.ok());
  EXPECT_EQ(limit->batch_size, kMaxBatchLines);

  EXPECT_EQ(ParseRequest("BATCH  7\r")->batch_size, 7u);  // CRLF + spaces

  const struct {
    const char* line;
    const char* wants;
  } kBad[] = {
      {"BATCH", "requires a line count"},
      {"BATCH   ", "requires a line count"},
      {"BATCH x", "requires a line count"},
      {"BATCH 3x", "requires a line count"},
      {"BATCH -1", "requires a line count"},
      {"BATCH 0", "meaningless"},
      {"BATCH 16385", "exceeds the limit"},
      {"batch 3", "neither a verb"},  // verbs are upper-case
  };
  for (const auto& c : kBad) {
    auto parsed = ParseRequest(c.line);
    ASSERT_FALSE(parsed.ok()) << "'" << c.line << "' should not parse";
    EXPECT_TRUE(parsed.status().IsInvalidArgument()) << c.line;
    EXPECT_NE(parsed.status().message().find(c.wants), std::string::npos)
        << "'" << c.line << "' -> " << parsed.status();
  }
}

TEST(LineProtocolTest, ParseRequestToleratesCrAndWhitespace) {
  EXPECT_EQ(ParseRequest("PING\r")->kind, Request::Kind::kPing);
  EXPECT_EQ(ParseRequest("  QUIT  ")->kind, Request::Kind::kQuit);
  auto reload = ParseRequest("RELOAD   /a b/c.idx \r");
  ASSERT_TRUE(reload.ok());
  EXPECT_EQ(reload->reload_path, "/a b/c.idx");  // inner spaces kept
  // A query line passes through verbatim (post-trim) for ParseServeQuery.
  auto query = ParseRequest(" 0.1 ; i1 , i2 ");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->query_line, "0.1 ; i1 , i2");
}

TEST(LineProtocolTest, ParseRequestMalformedTable) {
  const struct {
    const char* line;
    const char* wants;  // substring of the error message
  } kCases[] = {
      {"", "empty request"},
      {"   \r", "empty request"},
      {"PING now", "takes no arguments"},
      {"STATS verbose", "takes no arguments"},
      {"QUIT 1", "takes no arguments"},
      {"RELOAD", "requires an index path"},
      {"RELOAD   ", "requires an index path"},
      {"BOGUS", "neither a verb"},
      {"RELAOD /x.idx", "neither a verb"},  // typo'd verb, no ';'
      {"ping", "neither a verb"},           // verbs are upper-case
  };
  for (const auto& c : kCases) {
    auto parsed = ParseRequest(c.line);
    ASSERT_FALSE(parsed.ok()) << "'" << c.line << "' should not parse";
    EXPECT_TRUE(parsed.status().IsInvalidArgument()) << c.line;
    EXPECT_NE(parsed.status().message().find(c.wants), std::string::npos)
        << "'" << c.line << "' -> " << parsed.status();
    EXPECT_NE(parsed.status().message().find("col "), std::string::npos)
        << "'" << c.line << "' error lacks column context";
  }
}

TEST(LineProtocolTest, DeadlinePrefixLeadsAnyRequest) {
  // The additive `DEADLINE <ms>` prefix composes with every verb and
  // with the bare query grammar.
  auto query = ParseRequest("DEADLINE 50 0.1;i0,i1");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->kind, Request::Kind::kQuery);
  EXPECT_EQ(query->deadline_ms, 50u);
  EXPECT_EQ(query->query_line, "0.1;i0,i1");

  auto batch = ParseRequest("DEADLINE 200 BATCH 16");
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_EQ(batch->kind, Request::Kind::kBatch);
  EXPECT_EQ(batch->deadline_ms, 200u);
  EXPECT_EQ(batch->batch_size, 16u);

  auto ping = ParseRequest("DEADLINE 5 PING\r");
  ASSERT_TRUE(ping.ok()) << ping.status();
  EXPECT_EQ(ping->kind, Request::Kind::kPing);
  EXPECT_EQ(ping->deadline_ms, 5u);

  // A request without the prefix carries no budget of its own.
  EXPECT_EQ(ParseRequest("PING")->deadline_ms, 0u);
}

TEST(LineProtocolTest, DeadlinePrefixRoundTripsThroughEncode) {
  Request request;
  request.kind = Request::Kind::kQuery;
  request.query_line = "0.25;i1,i3";
  request.deadline_ms = 75;
  const std::string wire = EncodeRequest(request);
  EXPECT_EQ(wire, "DEADLINE 75 0.25;i1,i3");
  auto parsed = ParseRequest(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->deadline_ms, 75u);
  EXPECT_EQ(parsed->query_line, request.query_line);
}

TEST(LineProtocolTest, DeadlinePrefixMalformedTable) {
  const struct {
    const char* line;
    const char* wants;
  } kBad[] = {
      {"DEADLINE", "positive millisecond budget"},
      {"DEADLINE PING", "positive millisecond budget"},
      {"DEADLINE 0 PING", "positive millisecond budget"},
      {"DEADLINE -5 PING", "positive millisecond budget"},
      {"DEADLINE 5", "empty request"},  // nothing left to bound
      {"DEADLINE 5 DEADLINE 6 PING", "duplicate DEADLINE prefix"},
  };
  for (const auto& c : kBad) {
    auto parsed = ParseRequest(c.line);
    ASSERT_FALSE(parsed.ok()) << "'" << c.line << "' should not parse";
    EXPECT_NE(parsed.status().message().find(c.wants), std::string::npos)
        << "'" << c.line << "' -> " << parsed.status();
  }
}

// --------------------------------------------------------------- responses

TEST(LineProtocolTest, ResponseHeaderRoundTrip) {
  auto ok = ParseResponseHeader(EncodeOkHeader("TRUSSES", 42));
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->ok);
  EXPECT_EQ(ok->kind, "TRUSSES");
  EXPECT_EQ(ok->payload_lines, 42u);
  EXPECT_TRUE(ok->ToStatus().ok());

  const Status errors[] = {
      Status::InvalidArgument("col 3: bad alpha"),
      Status::NotFound("col 5: unknown item 'x'"),
      Status::OutOfRange("col 1: alpha overflow"),
      Status::Corruption("index header mangled"),
      Status::IOError("cannot open index"),
      Status::Unimplemented("RELOAD is disabled"),
      Status::Internal("unhandled"),
  };
  for (const Status& status : errors) {
    auto header = ParseResponseHeader(EncodeErrHeader(status));
    ASSERT_TRUE(header.ok()) << status;
    EXPECT_FALSE(header->ok);
    EXPECT_EQ(header->code, status.code());
    EXPECT_EQ(header->message, status.message());
    EXPECT_EQ(header->ToStatus(), status);
  }
}

TEST(LineProtocolTest, EncodeErrHeaderFlattensNewlines) {
  const std::string wire =
      EncodeErrHeader(Status::Internal("line one\nline two"));
  EXPECT_EQ(wire.find('\n'), std::string::npos);
  auto header = ParseResponseHeader(wire);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->message, "line one line two");
}

TEST(LineProtocolTest, ParseResponseHeaderMalformedTable) {
  const char* kCases[] = {
      "",                        // no version
      "TCF2 OK PONG 0",          // wrong version
      "tcf1 OK PONG 0",          // version is case-sensitive
      "TCF1",                    // no disposition
      "TCF1 MAYBE PONG 0",       // unknown disposition
      "TCF1 OK PONG",            // missing payload count
      "TCF1 OK PONG x",          // non-numeric payload count
      "TCF1 OK PONG -1",         // negative payload count
      "TCF1 ERR Bogus message",  // unknown status code
  };
  for (const char* line : kCases) {
    EXPECT_FALSE(ParseResponseHeader(line).ok()) << "'" << line << "'";
  }
}

// ------------------------------------------------------------ truss payload

TEST(LineProtocolTest, TrussRoundTrip) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  const TcTreeQueryResult result =
      QueryTcTree(tree, Itemset{0}, 0.1);
  ASSERT_FALSE(result.trusses.empty());
  for (const PatternTruss& truss : result.trusses) {
    const std::string wire = EncodeTruss(net.dictionary(), truss);
    auto decoded = DecodeTruss(wire);
    ASSERT_TRUE(decoded.ok()) << wire << ": " << decoded.status();
    ASSERT_EQ(decoded->pattern.size(), truss.pattern.size());
    for (size_t i = 0; i < truss.pattern.size(); ++i) {
      EXPECT_EQ(decoded->pattern[i],
                net.dictionary().Name(truss.pattern.items()[i]));
    }
    EXPECT_EQ(decoded->vertices, truss.vertices);
    EXPECT_EQ(decoded->edges, truss.edges);
  }
}

TEST(LineProtocolTest, TrussEmptyFieldsRoundTrip) {
  auto empty = DecodeTruss("||");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->pattern.empty());
  EXPECT_TRUE(empty->vertices.empty());
  EXPECT_TRUE(empty->edges.empty());

  auto no_edges = DecodeTruss("a,b|7 9|");
  ASSERT_TRUE(no_edges.ok());
  EXPECT_EQ(no_edges->pattern, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(no_edges->vertices, (std::vector<VertexId>{7, 9}));
  EXPECT_TRUE(no_edges->edges.empty());
}

TEST(LineProtocolTest, DecodeTrussMalformedTable) {
  const char* kCases[] = {
      "no bars at all",   // needs two '|'
      "one|bar",          // needs two '|'
      "a|1|1-2|extra",    // too many fields
      "a|x|1-2",          // non-numeric vertex
      "a|1 -2|",          // negative vertex
      "a|1|12",           // edge without '-'
      "a|1|1-x",          // non-numeric edge endpoint
      "a|1|-2",           // missing endpoint
      "a|4294967295|",    // the kInvalidVertex sentinel is not an id
      "a|1|1-4294967295", // ...nor a valid edge endpoint
      ",b|1|1-2",         // empty item name
      "a,,b|1|1-2",       // empty item name in the middle
  };
  for (const char* line : kCases) {
    auto decoded = DecodeTruss(line);
    ASSERT_FALSE(decoded.ok()) << "'" << line << "'";
    EXPECT_NE(decoded.status().message().find("col "), std::string::npos)
        << "'" << line << "' error lacks column context";
  }
}

// ----------------------------------------------------- query-line round trip

TEST(LineProtocolTest, QueryLineRoundTrip) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  ServeQuery query;
  query.items = Itemset{0, 1};
  query.alpha = 0.1 + 1e-13;  // needs %.17g to survive text round trip
  const std::string line = EncodeQueryLine(net.dictionary(), query);
  auto parsed = ParseServeQuery(net.dictionary(), line);
  ASSERT_TRUE(parsed.ok()) << line << ": " << parsed.status();
  EXPECT_EQ(parsed->items, query.items);
  EXPECT_EQ(parsed->alpha, query.alpha);  // bit-exact
}

// ------------------------------------------------------------ stats payload

TEST(LineProtocolTest, StatsRoundTrip) {
  ServeReport report;
  report.queries = 1234;
  report.trusses_returned = 99;
  report.qps = 5678.5;
  report.p99_us = 42.25;
  report.cache.hits = 10;
  report.cache.misses = 30;
  report.cache.partial_hits = 7;
  report.cache.composed_queries = 5;
  report.cache.admission_rejects = 2;
  report.connections_accepted = 3;
  report.connections_active = 2;
  report.connections_peak = 3;
  report.bytes_in = 1000;
  report.bytes_out = 9000;
  report.batches = 4;
  report.batch_queries = 64;
  report.batch_max_depth = 32;
  report.reloads = 2;
  report.last_reload_ms = 12.5;
  report.shards = 4;
  report.shard_queries = 2468;
  report.shard_reload_ms = 3.25;
  report.updates = 3;
  report.update_txs = 5;
  report.update_edges = 2;
  report.update_dirty_items = 9;
  report.update_shards_swapped = 4;
  report.last_update_ms = 6.5;
  report.deadline_exceeded = 11;
  report.rate_limited = 13;
  report.shed = 6;
  report.clients_tracked = 2;

  const std::vector<std::string> lines = EncodeStats(report);
  auto decoded = DecodeStats(lines);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), lines.size());
  auto find = [&](const std::string& key) -> std::string {
    for (const auto& [k, v] : *decoded) {
      if (k == key) return v;
    }
    ADD_FAILURE() << "missing stats key " << key;
    return {};
  };
  EXPECT_EQ(find("queries"), "1234");
  EXPECT_EQ(find("trusses_returned"), "99");
  EXPECT_EQ(find("qps"), "5678.5");
  EXPECT_EQ(find("p99_us"), "42.25");
  EXPECT_EQ(find("cache_hits"), "10");
  EXPECT_EQ(find("cache_hit_rate"), "0.25");
  EXPECT_EQ(find("connections_accepted"), "3");
  EXPECT_EQ(find("connections_active"), "2");
  EXPECT_EQ(find("connections_peak"), "3");
  EXPECT_EQ(find("bytes_in"), "1000");
  EXPECT_EQ(find("bytes_out"), "9000");
  EXPECT_EQ(find("batches"), "4");
  EXPECT_EQ(find("batch_queries"), "64");
  EXPECT_EQ(find("batch_max_depth"), "32");
  // The composable-cache keys are appended at the end (additive TCF1
  // change; see docs/serve-protocol.md).
  EXPECT_EQ(find("cache_partial_hits"), "7");
  EXPECT_EQ(find("cache_composed_queries"), "5");
  EXPECT_EQ(find("cache_admission_rejects"), "2");
  // ...followed by the snapshot-roll keys (same additive rule).
  EXPECT_EQ(find("reloads"), "2");
  EXPECT_EQ(find("last_reload_ms"), "12.5");
  // ...followed by the shard keys (same additive rule; all zero on an
  // unsharded backend).
  EXPECT_EQ(find("shards"), "4");
  EXPECT_EQ(find("shard_queries"), "2468");
  EXPECT_EQ(find("shard_reload_ms"), "3.25");
  // ...followed by the streaming-update keys (same additive rule; all
  // zero until the first UPDATE frame).
  EXPECT_EQ(find("updates"), "3");
  EXPECT_EQ(find("update_txs"), "5");
  EXPECT_EQ(find("update_edges"), "2");
  EXPECT_EQ(find("update_dirty_items"), "9");
  EXPECT_EQ(find("update_shards_swapped"), "4");
  EXPECT_EQ(find("last_update_ms"), "6.5");
  // ...followed by the overload-protection keys (same additive rule;
  // all zero until a deadline, rate limit, or shed fires).
  EXPECT_EQ(find("deadline_exceeded"), "11");
  EXPECT_EQ(find("rate_limited"), "13");
  EXPECT_EQ(find("shed"), "6");
  EXPECT_EQ(find("clients_tracked"), "2");
  EXPECT_EQ(lines.back(), "clients_tracked 2");

  EXPECT_FALSE(DecodeStats({"keyonly"}).ok());
  EXPECT_FALSE(DecodeStats({""}).ok());
}

// ----------------------------------------------- METRICS / EXPLAIN (PR 6)

TEST(LineProtocolTest, MetricsAndExplainRequestRoundTrip) {
  Request metrics;
  metrics.kind = Request::Kind::kMetrics;
  EXPECT_EQ(EncodeRequest(metrics), "METRICS");
  auto parsed = ParseRequest("METRICS");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, Request::Kind::kMetrics);

  Request explain;
  explain.kind = Request::Kind::kExplain;
  explain.query_line = "0.25;i1,i3";
  const std::string wire = EncodeRequest(explain);
  EXPECT_EQ(wire, "EXPLAIN 0.25;i1,i3");
  parsed = ParseRequest(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, Request::Kind::kExplain);
  EXPECT_EQ(parsed->query_line, "0.25;i1,i3");

  // EXPLAIN needs a query line that at least looks like one.
  EXPECT_FALSE(ParseRequest("EXPLAIN").ok());
  EXPECT_FALSE(ParseRequest("EXPLAIN notaquery").ok());
}

TEST(LineProtocolTest, EncodeExplainRoundTripsThroughDecodeStats) {
  QueryTrace trace;
  trace.stage_wall_us[static_cast<size_t>(QueryStage::kParse)] = 1.5;
  trace.stage_wall_us[static_cast<size_t>(QueryStage::kCacheProbe)] = 2.0;
  trace.stage_wall_us[static_cast<size_t>(QueryStage::kWalk)] = 140.25;
  trace.stage_cpu_us[static_cast<size_t>(QueryStage::kWalk)] = 139.0;
  trace.total_us = 150.0;
  trace.visited_nodes = 42;
  trace.retrieved_nodes = 7;
  trace.pruned_subtrees = 12;
  trace.covers_used = 2;
  trace.trusses = 7;
  trace.cache_hit = false;
  trace.composed = true;
  trace.shards_probed = 3;

  const std::vector<std::string> lines = EncodeExplain(trace);
  // Same `key value` grammar as STATS, so the same decoder reads it.
  auto pairs = DecodeStats(lines);
  ASSERT_TRUE(pairs.ok());
  auto find = [&](const std::string& key) -> std::string {
    for (const auto& [k, v] : *pairs) {
      if (k == key) return v;
    }
    return "<missing " + key + ">";
  };
  // One wall and one CPU key per stage, in stage order first.
  ASSERT_GE(lines.size(), 2 * kNumQueryStages);
  for (size_t i = 0; i < kNumQueryStages; ++i) {
    const std::string name(QueryStageName(static_cast<QueryStage>(i)));
    EXPECT_EQ(lines[i].rfind("stage_" + name + "_us ", 0), 0u) << lines[i];
    EXPECT_EQ(lines[kNumQueryStages + i].rfind(
                  "stage_" + name + "_cpu_us ", 0),
              0u)
        << lines[kNumQueryStages + i];
  }
  EXPECT_EQ(find("stage_parse_us"), "1.5");
  EXPECT_EQ(find("stage_cache_probe_us"), "2");
  EXPECT_EQ(find("stage_walk_us"), "140.25");
  EXPECT_EQ(find("stage_walk_cpu_us"), "139");
  EXPECT_EQ(find("total_us"), "150");
  EXPECT_EQ(find("visited_nodes"), "42");
  EXPECT_EQ(find("retrieved_nodes"), "7");
  EXPECT_EQ(find("pruned_subtrees"), "12");
  EXPECT_EQ(find("covers_used"), "2");
  EXPECT_EQ(find("trusses"), "7");
  EXPECT_EQ(find("cache_hit"), "0");
  EXPECT_EQ(find("composed"), "1");
  EXPECT_EQ(find("shards_probed"), "3");
}

}  // namespace
}  // namespace tcf
