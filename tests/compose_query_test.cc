// Property tests for the subset-composition primitives behind the
// serving layer's partial-reuse cache: ComposeTcTreeQuery must equal a
// cold QueryTcTree for any cover set drawn from real sub-query answers,
// and DeriveSubResult must project an answer for q down to the exact
// answer for any s ⊆ q.
#include <gtest/gtest.h>

#include <vector>

#include "core/tc_tree.h"
#include "core/tc_tree_query.h"
#include "test_util.h"
#include "util/rng.h"

namespace tcf {
namespace {

using testing::MakeFigureOneNetwork;
using testing::MakeRandomNetwork;
using testing::RandomNetOptions;

/// Field-for-field equality, traversal order included: composition must
/// be indistinguishable from the cold walk, not merely set-equal.
void ExpectIdentical(const TcTreeQueryResult& expected,
                     const TcTreeQueryResult& actual,
                     const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(expected.retrieved_nodes, actual.retrieved_nodes);
  ASSERT_EQ(expected.trusses.size(), actual.trusses.size());
  for (size_t i = 0; i < expected.trusses.size(); ++i) {
    const PatternTruss& e = expected.trusses[i];
    const PatternTruss& a = actual.trusses[i];
    EXPECT_EQ(e.pattern, a.pattern);
    EXPECT_EQ(e.edges, a.edges);
    EXPECT_EQ(e.vertices, a.vertices);
    EXPECT_EQ(e.frequencies, a.frequencies);  // bitwise: same code path
    EXPECT_EQ(e.edge_cohesions, a.edge_cohesions);
  }
}

/// A random sub-itemset of `q` (possibly empty or q itself).
Itemset RandomSubset(const Itemset& q, Rng& rng) {
  std::vector<ItemId> items;
  for (ItemId item : q) {
    if (rng.NextBool(0.5)) items.push_back(item);
  }
  return Itemset(std::move(items));
}

TEST(ComposeQueryTest, MatchesColdQueryOverRandomCovers) {
  // The property test the cache leans on: for random overlapping
  // itemsets, composing from any set of genuine sub-answers (including
  // overlapping and subsumed ones) reproduces the cold answer exactly.
  DatabaseNetwork net = MakeRandomNetwork({.num_items = 6, .seed = 19});
  TcTree tree = TcTree::Build(net);
  const std::vector<ItemId> items = net.ActiveItems();
  Rng rng(77);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<ItemId> subset;
    const size_t len = 2 + rng.NextUint64(items.size() - 1);
    for (size_t i = 0; i < len; ++i) {
      subset.push_back(items[rng.NextUint64(items.size())]);
    }
    const Itemset q(std::move(subset));
    const double alpha = 0.05 * static_cast<double>(rng.NextUint64(6));
    const TcTreeQueryResult expected = QueryTcTree(tree, q, alpha);

    // 0-4 covers, each the real answer of a random proper subset.
    std::vector<Itemset> cover_sets;
    std::vector<TcTreeQueryResult> cover_results;
    const size_t num_covers = rng.NextUint64(5);
    for (size_t i = 0; i < num_covers; ++i) {
      Itemset s = RandomSubset(q, rng);
      if (s == q || s.empty()) continue;
      cover_results.push_back(QueryTcTree(tree, s, alpha));
      cover_sets.push_back(std::move(s));
    }
    std::vector<SubPatternCover> covers;
    for (size_t i = 0; i < cover_sets.size(); ++i) {
      covers.push_back({&cover_sets[i], &cover_results[i]});
    }

    TcTreeComposeStats stats;
    const TcTreeQueryResult composed =
        ComposeTcTreeQuery(tree, q, alpha, covers, {}, &stats);
    ExpectIdentical(expected, composed,
                    "trial " + std::to_string(trial) + " q=" + q.ToString());
    EXPECT_EQ(composed.visited_nodes, expected.visited_nodes);
    // EXPLAIN surfaces pruned_subtrees as a walk fact; the composed
    // walk counts its covered-absence prunes exactly where the cold
    // walk counts empty-node prunes, so the two must agree.
    EXPECT_EQ(composed.pruned_subtrees, expected.pruned_subtrees);
    if (!covers.empty()) {  // an empty cover set takes the fallback path
      EXPECT_EQ(stats.reused_trusses + stats.computed_trusses,
                composed.retrieved_nodes);
    }
  }
}

TEST(ComposeQueryTest, FullCoverReusesEverything) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  const Itemset q{0, 1};
  const TcTreeQueryResult expected = QueryTcTree(tree, q, 0.1);
  // Covers {0} and {1} jointly contain every proper sub-pattern; only
  // the patterns needing both items still hit the tree.
  const Itemset s0{0}, s1{1};
  const TcTreeQueryResult r0 = QueryTcTree(tree, s0, 0.1);
  const TcTreeQueryResult r1 = QueryTcTree(tree, s1, 0.1);
  TcTreeComposeStats stats;
  const TcTreeQueryResult composed = ComposeTcTreeQuery(
      tree, q, 0.1, {{&s0, &r0}, {&s1, &r1}}, {}, &stats);
  ExpectIdentical(expected, composed, "full singleton cover");
  EXPECT_EQ(stats.reused_trusses, r0.trusses.size() + r1.trusses.size());
}

TEST(ComposeQueryTest, EmptyCoverSuppressesResidualWork) {
  // A cover with zero trusses proves its whole item subtree is empty at
  // this α — the composition must prune rather than recompute.
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  const Itemset q{0, 1};
  // Item 0's communities die at α = 0.3 (the triangle's eco), so at 0.35
  // its cached answer is empty while item 1 (the 0.7–0.9-frequency
  // filler) still backs communities.
  const Itemset s0{0};
  const TcTreeQueryResult r0 = QueryTcTree(tree, s0, 0.35);
  ASSERT_TRUE(r0.trusses.empty());
  TcTreeComposeStats stats;
  const TcTreeQueryResult composed =
      ComposeTcTreeQuery(tree, q, 0.35, {{&s0, &r0}}, {}, &stats);
  ExpectIdentical(QueryTcTree(tree, q, 0.35), composed, "empty cover");
  EXPECT_GT(stats.covered_prunes, 0u);
}

TEST(ComposeQueryTest, ShapingOptionsFallBackToColdQuery) {
  // min_truss_edges / max_results make cover absence ambiguous; the
  // compose entry point must detect that and answer cold.
  DatabaseNetwork net = MakeRandomNetwork({.seed = 5});
  TcTree tree = TcTree::Build(net);
  const Itemset q{0, 1, 2};
  const Itemset s{0, 1};
  const TcTreeQueryResult cover_result = QueryTcTree(tree, s, 0.0);
  for (const TcTreeQueryOptions options :
       {TcTreeQueryOptions{.min_truss_edges = 100},
        TcTreeQueryOptions{.max_results = 1}}) {
    TcTreeComposeStats stats;
    const TcTreeQueryResult composed = ComposeTcTreeQuery(
        tree, q, 0.0, {{&s, &cover_result}}, options, &stats);
    ExpectIdentical(QueryTcTree(tree, q, 0.0, options), composed,
                    "shaping fallback");
    EXPECT_EQ(stats.reused_trusses, 0u);
  }
}

TEST(ComposeQueryTest, DeriveSubResultEqualsDirectQuery) {
  // DeriveSubResult(answer(q), s) == answer(s) for every s ⊆ q — the
  // guarantee that makes derived admission sound.
  DatabaseNetwork net = MakeRandomNetwork({.num_items = 5, .seed = 33});
  TcTree tree = TcTree::Build(net);
  const std::vector<ItemId> items = net.ActiveItems();
  Rng rng(3);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<ItemId> subset;
    const size_t len = 1 + rng.NextUint64(items.size());
    for (size_t i = 0; i < len; ++i) {
      subset.push_back(items[rng.NextUint64(items.size())]);
    }
    const Itemset q(std::move(subset));
    const double alpha = 0.05 * static_cast<double>(rng.NextUint64(5));
    const TcTreeQueryResult full = QueryTcTree(tree, q, alpha);
    for (int k = 0; k < 4; ++k) {
      const Itemset s = RandomSubset(q, rng);
      const TcTreeQueryResult expected = QueryTcTree(tree, s, alpha);
      const TcTreeQueryResult derived = DeriveSubResult(full, s);
      ExpectIdentical(expected, derived,
                      "q=" + q.ToString() + " s=" + s.ToString());
    }
  }
}

}  // namespace
}  // namespace tcf
