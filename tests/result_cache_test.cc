#include "serve/result_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/tc_tree_query.h"
#include "tx/itemset.h"

namespace tcf {
namespace {

/// A result whose payload is `num_edges` edges — controls entry cost.
/// `visited_nodes` is set high so speculative-insert tests can lower it
/// deliberately without the default admission policy interfering here.
std::shared_ptr<const TcTreeQueryResult> MakeResult(size_t num_edges,
                                                    uint64_t tag = 0) {
  auto r = std::make_shared<TcTreeQueryResult>();
  PatternTruss t;
  t.pattern = Itemset{static_cast<ItemId>(tag)};
  for (size_t i = 0; i < num_edges; ++i) {
    t.edges.push_back(MakeEdge(static_cast<VertexId>(i),
                               static_cast<VertexId>(i + 1)));
  }
  t.edges.shrink_to_fit();
  r->trusses.push_back(std::move(t));
  r->retrieved_nodes = tag;  // lets tests tell results apart
  r->visited_nodes = 1u << 20;
  return r;
}

/// An opaque snapshot tag (stands in for the TC-Tree shared_ptr).
std::shared_ptr<const void> MakeTag() {
  return std::make_shared<const int>(0);
}

TEST(ResultCacheTest, LookupReturnsInsertedValue) {
  ResultCache cache;
  const Itemset q{1, 2, 3};
  EXPECT_EQ(cache.Lookup(q, 100), nullptr);
  auto value = MakeResult(4, 7);
  cache.Insert(q, 100, value);
  auto hit = cache.Lookup(q, 100);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), value.get());  // shared, not copied
  // Same itemset at a different quantized alpha is a distinct key.
  EXPECT_EQ(cache.Lookup(q, 101), nullptr);
  // Different itemset at the same alpha too.
  EXPECT_EQ(cache.Lookup(Itemset{1, 2}, 100), nullptr);

  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.25);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  const auto value = MakeResult(64);
  const size_t cost = ResultCache::CostOf(Itemset{0}, *value);
  // One shard sized for exactly three entries.
  ResultCache cache({.capacity_bytes = 3 * cost + cost / 2, .num_shards = 1});
  const Itemset a{1}, b{2}, c{3}, d{4};
  cache.Insert(a, 0, MakeResult(64));
  cache.Insert(b, 0, MakeResult(64));
  cache.Insert(c, 0, MakeResult(64));
  EXPECT_EQ(cache.Stats().entries, 3u);

  // Touch `a`, making `b` the least recently used; `d` must evict `b`.
  EXPECT_NE(cache.Lookup(a, 0), nullptr);
  cache.Insert(d, 0, MakeResult(64));
  EXPECT_EQ(cache.Stats().evictions, 1u);
  EXPECT_EQ(cache.Lookup(b, 0), nullptr);
  EXPECT_NE(cache.Lookup(a, 0), nullptr);
  EXPECT_NE(cache.Lookup(c, 0), nullptr);
  EXPECT_NE(cache.Lookup(d, 0), nullptr);

  // Insert two more: LRU order is now a, c, d (d most recent) → a, c go.
  cache.Insert(Itemset{5}, 0, MakeResult(64));
  cache.Insert(Itemset{6}, 0, MakeResult(64));
  EXPECT_EQ(cache.Stats().evictions, 3u);
  EXPECT_EQ(cache.Lookup(a, 0), nullptr);
  EXPECT_EQ(cache.Lookup(c, 0), nullptr);
  EXPECT_NE(cache.Lookup(d, 0), nullptr);
}

TEST(ResultCacheTest, CapacityAccounting) {
  const auto probe = MakeResult(64);
  const size_t cost = ResultCache::CostOf(Itemset{0}, *probe);
  ResultCache cache({.capacity_bytes = 3 * cost, .num_shards = 1});
  for (ItemId i = 0; i < 10; ++i) {
    cache.Insert(Itemset{i}, 0, MakeResult(64, i));
  }
  ResultCacheStats stats = cache.Stats();
  EXPECT_LE(stats.bytes, stats.capacity_bytes);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.bytes, 3 * cost);
  EXPECT_EQ(stats.evictions, 7u);

  // Re-inserting an existing key replaces in place: bytes account for
  // the new cost, entry count is unchanged.
  cache.Insert(Itemset{9}, 0, MakeResult(32, 9));
  stats = cache.Stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_LT(stats.bytes, 3 * cost);

  // An entry larger than the whole shard is refused outright.
  cache.Insert(Itemset{99}, 0, MakeResult(100000));
  const ResultCacheStats after = cache.Stats();
  EXPECT_EQ(after.entries, 3u);
  EXPECT_EQ(after.evictions, stats.evictions);
  EXPECT_EQ(cache.Lookup(Itemset{99}, 0), nullptr);
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache({.capacity_bytes = 0});
  cache.Insert(Itemset{1}, 0, MakeResult(4));
  EXPECT_EQ(cache.Lookup(Itemset{1}, 0), nullptr);
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST(ResultCacheTest, InvalidateDropsEverything) {
  ResultCache cache({.num_shards = 4});
  for (ItemId i = 0; i < 20; ++i) {
    cache.Insert(Itemset{i}, i, MakeResult(8, i));
  }
  EXPECT_EQ(cache.Stats().entries, 20u);

  cache.Invalidate();
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.invalidations, 1u);
  for (ItemId i = 0; i < 20; ++i) {
    EXPECT_EQ(cache.Lookup(Itemset{i}, i), nullptr);
  }
}

TEST(ResultCacheTest, EntriesSurviveForeignSnapshotChurn) {
  // The per-shard cache property sharded serving leans on: each shard
  // owns a private ResultCache, so *another* shard's reload shows up
  // here only as unrelated snapshot tags being born and dying — never
  // as an Invalidate(). Entries tagged with a still-live snapshot must
  // keep serving exact hits and keep planning as covers throughout.
  ResultCache cache;
  const auto tag_mine = MakeTag();
  cache.Insert(Itemset{1, 2}, 0, MakeResult(4, 1), cache.epoch(), tag_mine);

  // Foreign churn: other snapshots appear, tag some inserts, and die.
  for (int round = 0; round < 3; ++round) {
    auto tag_foreign = MakeTag();
    cache.Insert(Itemset{7, 8}, 0, MakeResult(4, 10 + round), cache.epoch(),
                 tag_foreign);
  }

  // The exact hit is still resident and shared, not recomputed.
  auto hit = cache.Lookup(Itemset{1, 2}, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->retrieved_nodes, 1u);

  // Still composable against its own (live) snapshot...
  auto covers = cache.LookupSubsets(Itemset{1, 2, 3}, 0, tag_mine.get());
  ASSERT_EQ(covers.size(), 1u);
  EXPECT_EQ(covers[0].itemset, Itemset({1, 2}));
  // ...but never against a snapshot it was not computed from.
  const auto tag_other = MakeTag();
  EXPECT_TRUE(cache.LookupSubsets(Itemset{1, 2, 3}, 0, tag_other.get())
                  .empty());

  EXPECT_EQ(cache.Stats().invalidations, 0u);
}

TEST(ResultCacheTest, EpochCheckedInsertDropsStaleValues) {
  ResultCache cache;
  const uint64_t stale = cache.epoch();
  cache.Invalidate();  // simulates a snapshot swap mid-computation
  cache.Insert(Itemset{1}, 0, MakeResult(4), stale);
  EXPECT_EQ(cache.Lookup(Itemset{1}, 0), nullptr);
  EXPECT_EQ(cache.Stats().entries, 0u);

  cache.Insert(Itemset{1}, 0, MakeResult(4), cache.epoch());
  EXPECT_NE(cache.Lookup(Itemset{1}, 0), nullptr);
}

TEST(ResultCacheTest, LookupSubsetsPlansCoversSmallQuery) {
  // |q| ≤ subset_enum_limit takes the exhaustive-enumeration path.
  ResultCache cache;
  const auto tag = MakeTag();
  cache.Insert(Itemset{1, 2}, 0, MakeResult(4, 1), cache.epoch(), tag);
  cache.Insert(Itemset{3}, 0, MakeResult(4, 2), cache.epoch(), tag);
  cache.Insert(Itemset{9}, 0, MakeResult(4, 3), cache.epoch(), tag);   // ⊄ q
  cache.Insert(Itemset{1, 2}, 5, MakeResult(4, 4), cache.epoch(), tag);  // α≠

  const auto covers = cache.LookupSubsets(Itemset{1, 2, 3}, 0, tag.get());
  ASSERT_EQ(covers.size(), 2u);
  // Planner orders largest first.
  EXPECT_EQ(covers[0].itemset, (Itemset{1, 2}));
  EXPECT_EQ(covers[0].value->retrieved_nodes, 1u);
  EXPECT_EQ(covers[1].itemset, (Itemset{3}));

  // The exact query itself is never a cover, and singletons find nothing.
  EXPECT_TRUE(cache.LookupSubsets(Itemset{1, 2}, 5, tag.get()).empty());
  EXPECT_TRUE(cache.LookupSubsets(Itemset{3}, 0, tag.get()).empty());

  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.partial_hits, 2u);
  EXPECT_EQ(stats.composed_queries, 1u);
  // Subset probes never count as exact hits or misses.
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(ResultCacheTest, LookupSubsetsUsesInvertedIndexForLargeQueries) {
  // |q| above the enumeration limit scans the per-item inverted index.
  ResultCache cache({.subset_enum_limit = 4});
  const auto tag = MakeTag();
  cache.Insert(Itemset{1, 2, 3}, 7, MakeResult(4, 1), cache.epoch(), tag);
  cache.Insert(Itemset{8, 9}, 7, MakeResult(4, 2), cache.epoch(), tag);
  cache.Insert(Itemset{1, 50}, 7, MakeResult(4, 3), cache.epoch(), tag);

  const Itemset q{1, 2, 3, 4, 8, 9};  // 6 items > limit 4
  auto covers = cache.LookupSubsets(q, 7, tag.get());
  ASSERT_EQ(covers.size(), 2u);
  EXPECT_EQ(covers[0].itemset, (Itemset{1, 2, 3}));
  EXPECT_EQ(covers[1].itemset, (Itemset{8, 9}));

  // Eviction unlinks postings: once {8, 9} is gone, it is not planned.
  cache.Invalidate();
  EXPECT_TRUE(cache.LookupSubsets(q, 7, tag.get()).empty());
}

TEST(ResultCacheTest, PlannerDropsSubsumedCovers) {
  ResultCache cache;
  const auto tag = MakeTag();
  cache.Insert(Itemset{1, 2, 3}, 0, MakeResult(4, 1), cache.epoch(), tag);
  cache.Insert(Itemset{1, 2}, 0, MakeResult(4, 2), cache.epoch(), tag);
  cache.Insert(Itemset{2, 3}, 0, MakeResult(4, 3), cache.epoch(), tag);
  cache.Insert(Itemset{4}, 0, MakeResult(4, 4), cache.epoch(), tag);

  const auto covers = cache.LookupSubsets(Itemset{1, 2, 3, 4}, 0, tag.get());
  // {1,2} and {2,3} are ⊆ {1,2,3}: they could only contribute duplicate
  // patterns, so the plan is the two maximal covers.
  ASSERT_EQ(covers.size(), 2u);
  EXPECT_EQ(covers[0].itemset, (Itemset{1, 2, 3}));
  EXPECT_EQ(covers[1].itemset, (Itemset{4}));
}

TEST(ResultCacheTest, LookupSubsetsFiltersBySnapshotTag) {
  ResultCache cache;
  const auto tag_a = MakeTag();
  const auto tag_b = MakeTag();
  cache.Insert(Itemset{1}, 0, MakeResult(4, 1), cache.epoch(), tag_a);
  cache.Insert(Itemset{2}, 0, MakeResult(4, 2), cache.epoch(), tag_b);
  // Untagged entries (the 3-arg Insert) are exact-only.
  cache.Insert(Itemset{3}, 0, MakeResult(4, 3));

  const auto covers = cache.LookupSubsets(Itemset{1, 2, 3}, 0, tag_a.get());
  ASSERT_EQ(covers.size(), 1u);
  EXPECT_EQ(covers[0].itemset, (Itemset{1}));
  // All three still serve exact lookups regardless of tag.
  EXPECT_NE(cache.Lookup(Itemset{2}, 0), nullptr);
  EXPECT_NE(cache.Lookup(Itemset{3}, 0), nullptr);
}

TEST(ResultCacheTest, CostAwareAdmissionGatesSpeculativeInserts) {
  // Two speculative (derived) results of identical byte cost; only the
  // one standing in for an expensive walk (high visited_nodes) is worth
  // pinning.
  ResultCache cache({.admission_bytes_per_node = 64});
  const auto tag = MakeTag();
  auto cheap_to_rebuild = std::make_shared<TcTreeQueryResult>(
      *MakeResult(512, 1));
  cheap_to_rebuild->visited_nodes = 2;  // ~4 KiB for 2 nodes of work
  cache.Insert(Itemset{1}, 0, std::move(cheap_to_rebuild), cache.epoch(),
               tag, /*speculative=*/true);
  EXPECT_EQ(cache.Lookup(Itemset{1}, 0), nullptr);
  EXPECT_EQ(cache.Stats().admission_rejects, 1u);
  EXPECT_EQ(cache.Stats().inserts, 0u);

  auto expensive_to_rebuild = std::make_shared<TcTreeQueryResult>(
      *MakeResult(512, 2));
  expensive_to_rebuild->visited_nodes = 1000;
  cache.Insert(Itemset{2}, 0, std::move(expensive_to_rebuild),
               cache.epoch(), tag, /*speculative=*/true);
  EXPECT_NE(cache.Lookup(Itemset{2}, 0), nullptr);
  EXPECT_EQ(cache.Stats().admission_rejects, 1u);

  // A *demanded* answer with the same lopsided bytes-to-work shape is
  // exempt — its rebuild cost scales with its own payload, so refusing
  // it would only force the expensive recomputation every repeat
  // (exactly the pre-composable cache's behavior, preserved).
  auto demanded = std::make_shared<TcTreeQueryResult>(*MakeResult(512, 3));
  demanded->visited_nodes = 2;
  cache.Insert(Itemset{3}, 0, std::move(demanded));
  EXPECT_NE(cache.Lookup(Itemset{3}, 0), nullptr);
  EXPECT_EQ(cache.Stats().admission_rejects, 1u);

  // 0 disables the policy even for speculative inserts.
  ResultCache lax({.admission_bytes_per_node = 0});
  auto sparse = std::make_shared<TcTreeQueryResult>(*MakeResult(512, 4));
  sparse->visited_nodes = 0;
  lax.Insert(Itemset{1}, 0, std::move(sparse), lax.epoch(), tag,
             /*speculative=*/true);
  EXPECT_NE(lax.Lookup(Itemset{1}, 0), nullptr);
  EXPECT_EQ(lax.Stats().admission_rejects, 0u);
}

TEST(ResultCacheTest, ContainsIsSideEffectFree) {
  ResultCache cache;
  cache.Insert(Itemset{1}, 0, MakeResult(4, 1));
  EXPECT_TRUE(cache.Contains(Itemset{1}, 0));
  EXPECT_FALSE(cache.Contains(Itemset{1}, 1));
  EXPECT_FALSE(cache.Contains(Itemset{2}, 0));
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(ResultCacheTest, EvictionUnlinksInvertedIndex) {
  const auto probe = MakeResult(64);
  const size_t cost = ResultCache::CostOf(Itemset{0}, *probe);
  ResultCache cache({.capacity_bytes = 2 * cost, .num_shards = 1});
  const auto tag = MakeTag();
  cache.Insert(Itemset{1}, 0, MakeResult(64, 1), cache.epoch(), tag);
  cache.Insert(Itemset{2}, 0, MakeResult(64, 2), cache.epoch(), tag);
  // {1} is now LRU; this insert evicts it.
  cache.Insert(Itemset{3}, 0, MakeResult(64, 3), cache.epoch(), tag);
  EXPECT_EQ(cache.Stats().evictions, 1u);

  const auto covers = cache.LookupSubsets(Itemset{1, 2, 3}, 0, tag.get());
  ASSERT_EQ(covers.size(), 2u);  // the evicted {1} must not be planned
  EXPECT_EQ(covers[0].itemset, (Itemset{2}));
  EXPECT_EQ(covers[1].itemset, (Itemset{3}));
}

// --- Targeted invalidation (core/tc_tree_update.h roll-ins) -----------

TEST(ResultCacheTest, InvalidateItemsDropsExactlyIntersectingEntries) {
  ResultCacheOptions opts;
  opts.num_shards = 4;
  ResultCache cache(opts);
  const auto old_tag = MakeTag();

  // Every 3-subset of {0..5}; the property must hold per entry, across
  // shards, whatever the dirty set.
  std::vector<Itemset> patterns;
  for (ItemId a = 0; a < 6; ++a) {
    for (ItemId b = a + 1; b < 6; ++b) {
      for (ItemId c = b + 1; c < 6; ++c) patterns.push_back(Itemset{a, b, c});
    }
  }
  std::vector<std::shared_ptr<const TcTreeQueryResult>> values;
  for (size_t i = 0; i < patterns.size(); ++i) {
    values.push_back(MakeResult(2, i));
    cache.Insert(patterns[i], 100, values[i], cache.epoch(), old_tag);
  }

  const std::vector<ItemId> dirty = {1, 4};
  const auto new_tag = MakeTag();
  cache.InvalidateItems(dirty, old_tag.get(), new_tag);

  size_t survivors = 0;
  for (size_t i = 0; i < patterns.size(); ++i) {
    const bool intersects =
        patterns[i].Contains(1) || patterns[i].Contains(4);
    auto hit = cache.Lookup(patterns[i], 100);
    if (intersects) {
      EXPECT_EQ(hit, nullptr) << patterns[i].ToString();
    } else {
      ++survivors;
      ASSERT_NE(hit, nullptr) << patterns[i].ToString();
      // Byte-identical: the very same shared payload, untouched.
      EXPECT_EQ(hit.get(), values[i].get()) << patterns[i].ToString();
    }
  }
  EXPECT_GT(survivors, 0u);
  EXPECT_EQ(cache.Stats().entries, survivors);
}

TEST(ResultCacheTest, InvalidateItemsRetagsSurvivorsAsCovers) {
  ResultCache cache;
  const auto old_tag = MakeTag();
  const auto foreign_tag = MakeTag();
  cache.Insert(Itemset{1, 2}, 100, MakeResult(2, 1), cache.epoch(), old_tag);
  cache.Insert(Itemset{2, 3}, 100, MakeResult(2, 2), cache.epoch(),
               foreign_tag);
  cache.Insert(Itemset{5, 6}, 100, MakeResult(2, 3), cache.epoch(), old_tag);
  cache.Insert(Itemset{8, 9}, 100, MakeResult(2, 4));  // untagged

  const auto new_tag = MakeTag();
  cache.InvalidateItems({5}, old_tag.get(), new_tag);

  // The clean old-snapshot entry was retagged: it now composes against
  // the *new* snapshot. The foreign-tagged {2,3} was left alone, so it
  // is not offered as a cover here — only {1,2} is.
  auto covers = cache.LookupSubsets(Itemset{1, 2, 3}, 100, new_tag.get());
  ASSERT_EQ(covers.size(), 1u);
  EXPECT_EQ(covers[0].itemset, (Itemset{1, 2}));

  // Foreign-tagged and untagged survivors still serve exact hits.
  EXPECT_NE(cache.Lookup(Itemset{2, 3}, 100), nullptr);
  EXPECT_NE(cache.Lookup(Itemset{8, 9}, 100), nullptr);
  // The dirty-intersecting entry is gone entirely.
  EXPECT_EQ(cache.Lookup(Itemset{5, 6}, 100), nullptr);
}

TEST(ResultCacheTest, InvalidateItemsDropsRacingStaleInserts) {
  ResultCache cache;
  const auto old_tag = MakeTag();
  const auto new_tag = MakeTag();
  const uint64_t epoch_seen = cache.epoch();
  cache.InvalidateItems({1}, old_tag.get(), new_tag);
  // A writer that read the epoch before the roll-in must drop its
  // (possibly old-tree) value, exactly as with a full Invalidate().
  cache.Insert(Itemset{7}, 100, MakeResult(2, 9), epoch_seen, new_tag);
  EXPECT_EQ(cache.Lookup(Itemset{7}, 100), nullptr);
  EXPECT_EQ(cache.Stats().invalidations, 1u);
}

TEST(ResultCacheTest, InvalidateItemsCoversSpeculativeEntries) {
  ResultCacheOptions opts;
  opts.admission_bytes_per_node = 0;  // admit every derived entry
  ResultCache cache(opts);
  const auto old_tag = MakeTag();
  cache.Insert(Itemset{1, 2}, 100, MakeResult(2, 1), cache.epoch(), old_tag,
               /*speculative=*/true);
  cache.Insert(Itemset{3, 4}, 100, MakeResult(2, 2), cache.epoch(), old_tag,
               /*speculative=*/true);
  const auto new_tag = MakeTag();
  cache.InvalidateItems({2}, old_tag.get(), new_tag);
  EXPECT_EQ(cache.Lookup(Itemset{1, 2}, 100), nullptr);
  EXPECT_NE(cache.Lookup(Itemset{3, 4}, 100), nullptr);
}

TEST(ResultCacheTest, ConcurrentSubsetTrafficIsSafe) {
  ResultCache cache({.capacity_bytes = size_t{1} << 18, .num_shards = 8});
  const auto tag = MakeTag();
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, &tag, t] {
      for (int i = 0; i < 300; ++i) {
        const ItemId a = static_cast<ItemId>(i % 11);
        const ItemId b = static_cast<ItemId>(7 + i % 17);
        cache.Insert(Itemset{a}, 0, MakeResult(8, a), cache.epoch(), tag);
        const auto covers =
            cache.LookupSubsets(Itemset{a, b, 40}, 0, tag.get());
        for (const auto& cover : covers) {
          ASSERT_NE(cover.value, nullptr);
          EXPECT_TRUE(cover.itemset.IsSubsetOf(Itemset{a, b, 40}));
        }
        if (t == 0 && i % 100 == 99) cache.Invalidate();
      }
    });
  }
  for (auto& th : threads) th.join();
}

TEST(ResultCacheTest, ConcurrentMixedTrafficIsSafe) {
  ResultCache cache({.capacity_bytes = size_t{1} << 16, .num_shards = 8});
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        const Itemset q{static_cast<ItemId>(i % 37)};
        if (auto hit = cache.Lookup(q, 0)) {
          EXPECT_EQ(hit->retrieved_nodes, static_cast<uint64_t>(i % 37));
        } else {
          cache.Insert(q, 0, MakeResult(16, i % 37));
        }
        if (t == 0 && i % 100 == 99) cache.Invalidate();
      }
    });
  }
  for (auto& th : threads) th.join();
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits + stats.misses, 8u * 500u);
  EXPECT_LE(stats.bytes, stats.capacity_bytes);
}

}  // namespace
}  // namespace tcf
