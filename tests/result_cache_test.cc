#include "serve/result_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/tc_tree_query.h"
#include "tx/itemset.h"

namespace tcf {
namespace {

/// A result whose payload is `num_edges` edges — controls entry cost.
std::shared_ptr<const TcTreeQueryResult> MakeResult(size_t num_edges,
                                                    uint64_t tag = 0) {
  auto r = std::make_shared<TcTreeQueryResult>();
  PatternTruss t;
  t.pattern = Itemset{static_cast<ItemId>(tag)};
  for (size_t i = 0; i < num_edges; ++i) {
    t.edges.push_back(MakeEdge(static_cast<VertexId>(i),
                               static_cast<VertexId>(i + 1)));
  }
  t.edges.shrink_to_fit();
  r->trusses.push_back(std::move(t));
  r->retrieved_nodes = tag;  // lets tests tell results apart
  return r;
}

TEST(ResultCacheTest, LookupReturnsInsertedValue) {
  ResultCache cache;
  const Itemset q{1, 2, 3};
  EXPECT_EQ(cache.Lookup(q, 100), nullptr);
  auto value = MakeResult(4, 7);
  cache.Insert(q, 100, value);
  auto hit = cache.Lookup(q, 100);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), value.get());  // shared, not copied
  // Same itemset at a different quantized alpha is a distinct key.
  EXPECT_EQ(cache.Lookup(q, 101), nullptr);
  // Different itemset at the same alpha too.
  EXPECT_EQ(cache.Lookup(Itemset{1, 2}, 100), nullptr);

  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.25);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  const auto value = MakeResult(64);
  const size_t cost = ResultCache::CostOf(Itemset{0}, *value);
  // One shard sized for exactly three entries.
  ResultCache cache({.capacity_bytes = 3 * cost + cost / 2, .num_shards = 1});
  const Itemset a{1}, b{2}, c{3}, d{4};
  cache.Insert(a, 0, MakeResult(64));
  cache.Insert(b, 0, MakeResult(64));
  cache.Insert(c, 0, MakeResult(64));
  EXPECT_EQ(cache.Stats().entries, 3u);

  // Touch `a`, making `b` the least recently used; `d` must evict `b`.
  EXPECT_NE(cache.Lookup(a, 0), nullptr);
  cache.Insert(d, 0, MakeResult(64));
  EXPECT_EQ(cache.Stats().evictions, 1u);
  EXPECT_EQ(cache.Lookup(b, 0), nullptr);
  EXPECT_NE(cache.Lookup(a, 0), nullptr);
  EXPECT_NE(cache.Lookup(c, 0), nullptr);
  EXPECT_NE(cache.Lookup(d, 0), nullptr);

  // Insert two more: LRU order is now a, c, d (d most recent) → a, c go.
  cache.Insert(Itemset{5}, 0, MakeResult(64));
  cache.Insert(Itemset{6}, 0, MakeResult(64));
  EXPECT_EQ(cache.Stats().evictions, 3u);
  EXPECT_EQ(cache.Lookup(a, 0), nullptr);
  EXPECT_EQ(cache.Lookup(c, 0), nullptr);
  EXPECT_NE(cache.Lookup(d, 0), nullptr);
}

TEST(ResultCacheTest, CapacityAccounting) {
  const auto probe = MakeResult(64);
  const size_t cost = ResultCache::CostOf(Itemset{0}, *probe);
  ResultCache cache({.capacity_bytes = 3 * cost, .num_shards = 1});
  for (ItemId i = 0; i < 10; ++i) {
    cache.Insert(Itemset{i}, 0, MakeResult(64, i));
  }
  ResultCacheStats stats = cache.Stats();
  EXPECT_LE(stats.bytes, stats.capacity_bytes);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.bytes, 3 * cost);
  EXPECT_EQ(stats.evictions, 7u);

  // Re-inserting an existing key replaces in place: bytes account for
  // the new cost, entry count is unchanged.
  cache.Insert(Itemset{9}, 0, MakeResult(32, 9));
  stats = cache.Stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_LT(stats.bytes, 3 * cost);

  // An entry larger than the whole shard is refused outright.
  cache.Insert(Itemset{99}, 0, MakeResult(100000));
  const ResultCacheStats after = cache.Stats();
  EXPECT_EQ(after.entries, 3u);
  EXPECT_EQ(after.evictions, stats.evictions);
  EXPECT_EQ(cache.Lookup(Itemset{99}, 0), nullptr);
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache({.capacity_bytes = 0});
  cache.Insert(Itemset{1}, 0, MakeResult(4));
  EXPECT_EQ(cache.Lookup(Itemset{1}, 0), nullptr);
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST(ResultCacheTest, InvalidateDropsEverything) {
  ResultCache cache({.num_shards = 4});
  for (ItemId i = 0; i < 20; ++i) {
    cache.Insert(Itemset{i}, i, MakeResult(8, i));
  }
  EXPECT_EQ(cache.Stats().entries, 20u);

  cache.Invalidate();
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.invalidations, 1u);
  for (ItemId i = 0; i < 20; ++i) {
    EXPECT_EQ(cache.Lookup(Itemset{i}, i), nullptr);
  }
}

TEST(ResultCacheTest, EpochCheckedInsertDropsStaleValues) {
  ResultCache cache;
  const uint64_t stale = cache.epoch();
  cache.Invalidate();  // simulates a snapshot swap mid-computation
  cache.Insert(Itemset{1}, 0, MakeResult(4), stale);
  EXPECT_EQ(cache.Lookup(Itemset{1}, 0), nullptr);
  EXPECT_EQ(cache.Stats().entries, 0u);

  cache.Insert(Itemset{1}, 0, MakeResult(4), cache.epoch());
  EXPECT_NE(cache.Lookup(Itemset{1}, 0), nullptr);
}

TEST(ResultCacheTest, ConcurrentMixedTrafficIsSafe) {
  ResultCache cache({.capacity_bytes = size_t{1} << 16, .num_shards = 8});
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        const Itemset q{static_cast<ItemId>(i % 37)};
        if (auto hit = cache.Lookup(q, 0)) {
          EXPECT_EQ(hit->retrieved_nodes, static_cast<uint64_t>(i % 37));
        } else {
          cache.Insert(q, 0, MakeResult(16, i % 37));
        }
        if (t == 0 && i % 100 == 99) cache.Invalidate();
      }
    });
  }
  for (auto& th : threads) th.join();
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits + stats.misses, 8u * 500u);
  EXPECT_LE(stats.bytes, stats.capacity_bytes);
}

}  // namespace
}  // namespace tcf
