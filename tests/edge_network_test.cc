// Tests for the §8 future-work extension: edge database networks.
#include <gtest/gtest.h>

#include "core/communities.h"
#include "ext/edge_miner.h"
#include "ext/edge_mptd.h"
#include "ext/edge_network.h"
#include "graph/graph_builder.h"
#include "test_util.h"
#include "util/rng.h"

namespace tcf {
namespace {

using testing::EdgeList;

// Builds an edge database network from explicit edges and per-edge
// transactions (aligned with canonical edge-id order after Build()).
EdgeDatabaseNetwork MakeEdgeNet(
    size_t n, std::vector<std::pair<VertexId, VertexId>> edge_list,
    const std::vector<std::vector<std::vector<ItemId>>>& tx_per_edge) {
  GraphBuilder b(n);
  for (auto [x, y] : edge_list) EXPECT_TRUE(b.AddEdge(x, y).ok());
  Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), tx_per_edge.size());
  std::vector<TransactionDb> dbs(g.num_edges());
  ItemId max_item = 0;
  for (EdgeId e = 0; e < tx_per_edge.size(); ++e) {
    for (const auto& t : tx_per_edge[e]) {
      for (ItemId i : t) max_item = std::max(max_item, i);
      dbs[e].Add(Itemset(t));
    }
  }
  ItemDictionary dict;
  for (ItemId i = 0; i <= max_item; ++i) {
    dict.GetOrAdd("e" + std::to_string(i));
  }
  return EdgeDatabaseNetwork(std::move(g), std::move(dbs), std::move(dict));
}

// A triangle whose three edges all contain item 0 at various freqs,
// plus a pendant edge without it. Canonical edge order for edges
// {0,1},{0,2},{1,2},{2,3}.
EdgeDatabaseNetwork TriangleNet() {
  return MakeEdgeNet(4, {{0, 1}, {0, 2}, {1, 2}, {2, 3}},
                     {{{0}, {0}, {1}},   // f({0}) = 2/3
                      {{0}, {1}},        // f = 1/2
                      {{0}},             // f = 1
                      {{1}}});           // f = 0
}

TEST(EdgeNetworkTest, ConstructionAndFrequency) {
  EdgeDatabaseNetwork net = TriangleNet();
  EXPECT_EQ(net.num_vertices(), 4u);
  EXPECT_EQ(net.num_edges(), 4u);
  EXPECT_DOUBLE_EQ(net.Frequency(0, Itemset({0})), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(net.Frequency(1, Itemset({0})), 0.5);
  EXPECT_DOUBLE_EQ(net.Frequency(2, Itemset({0})), 1.0);
  EXPECT_DOUBLE_EQ(net.Frequency(3, Itemset({0})), 0.0);
  EXPECT_EQ(net.ActiveItems(), (std::vector<ItemId>{0, 1}));
}

TEST(EdgeNetworkTest, InduceThemeNetworkKeepsPositiveEdges) {
  EdgeDatabaseNetwork net = TriangleNet();
  EdgeThemeNetwork tn = InduceEdgeThemeNetwork(net, Itemset({0}));
  EXPECT_EQ(tn.edges, EdgeList({{0, 1}, {0, 2}, {1, 2}}));
  EXPECT_DOUBLE_EQ(tn.frequencies[0], 2.0 / 3.0);
}

TEST(EdgeNetworkTest, InduceFromEdgesRestricts) {
  EdgeDatabaseNetwork net = TriangleNet();
  EdgeThemeNetwork tn = InduceEdgeThemeNetworkFromEdges(
      net, Itemset({0}), EdgeList({{0, 1}, {2, 3}}));
  EXPECT_EQ(tn.edges, EdgeList({{0, 1}}));  // {2,3} has f = 0
}

TEST(EdgeMptdTest, TriangleCohesionIsMinOfEdgeFrequencies) {
  EdgeDatabaseNetwork net = TriangleNet();
  EdgeThemeNetwork tn = InduceEdgeThemeNetwork(net, Itemset({0}));
  PatternTruss truss = EdgeMptd(tn, 0.0);
  // One triangle; every edge's cohesion = min(2/3, 1/2, 1) = 1/2.
  ASSERT_EQ(truss.num_edges(), 3u);
  for (CohesionValue c : truss.edge_cohesions) {
    EXPECT_EQ(c, QuantizeFrequency(0.5));
  }
}

TEST(EdgeMptdTest, ThresholdPeelsTriangle) {
  EdgeDatabaseNetwork net = TriangleNet();
  EdgeThemeNetwork tn = InduceEdgeThemeNetwork(net, Itemset({0}));
  EXPECT_FALSE(EdgeMptd(tn, 0.49).empty());
  EXPECT_TRUE(EdgeMptd(tn, 0.5).empty());  // strict predicate
}

TEST(EdgeMptdTest, EmptyNetwork) {
  EdgeThemeNetwork tn;
  tn.pattern = Itemset({0});
  EXPECT_TRUE(EdgeMptd(tn, 0.0).empty());
}

// Random edge networks for property testing.
EdgeDatabaseNetwork RandomEdgeNet(uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(10);
  std::vector<std::pair<VertexId, VertexId>> chosen;
  for (VertexId a = 0; a < 10; ++a) {
    for (VertexId v = a + 1; v < 10; ++v) {
      if (rng.NextBool(0.45)) chosen.emplace_back(a, v);
    }
  }
  std::vector<std::vector<std::vector<ItemId>>> tx(chosen.size());
  for (auto& db : tx) {
    const size_t n_tx = 2 + rng.NextUint64(5);
    for (size_t t = 0; t < n_tx; ++t) {
      std::vector<ItemId> items;
      const size_t len = 1 + rng.NextUint64(3);
      for (size_t i = 0; i < len; ++i) {
        items.push_back(static_cast<ItemId>(rng.NextUint64(4)));
      }
      db.push_back(std::move(items));
    }
  }
  return MakeEdgeNet(10, std::move(chosen), tx);
}

class EdgeMptdPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(EdgeMptdPropertyTest, PeelingMatchesFixpoint) {
  const auto [seed, alpha] = GetParam();
  EdgeDatabaseNetwork net = RandomEdgeNet(seed);
  for (ItemId item : net.ActiveItems()) {
    EdgeThemeNetwork tn = InduceEdgeThemeNetwork(net, Itemset::Single(item));
    PatternTruss fast = EdgeMptd(tn, alpha);
    PatternTruss slow = EdgeMptdBruteForce(tn, alpha);
    EXPECT_EQ(fast.edges, slow.edges) << "item " << item;
    EXPECT_EQ(fast.edge_cohesions, slow.edge_cohesions);
    EXPECT_EQ(fast.vertices, slow.vertices);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, EdgeMptdPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(0.0, 0.2, 0.5)));

class EdgeMinerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EdgeMinerPropertyTest, TcfiMatchesOracle) {
  EdgeDatabaseNetwork net = RandomEdgeNet(GetParam());
  for (double alpha : {0.0, 0.25}) {
    MiningResult fast = RunEdgeTcfi(net, {.alpha = alpha});
    MiningResult slow = BruteForceEdgeMineAll(net, alpha);
    ASSERT_EQ(fast.trusses.size(), slow.trusses.size()) << "alpha=" << alpha;
    for (size_t i = 0; i < fast.trusses.size(); ++i) {
      EXPECT_EQ(fast.trusses[i].pattern, slow.trusses[i].pattern);
      EXPECT_EQ(fast.trusses[i].edges, slow.trusses[i].edges);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, EdgeMinerPropertyTest,
                         ::testing::Range<uint64_t>(1, 7));

TEST(EdgeMinerTest, GraphAntiMonotonicityHolds) {
  // p1 ⊆ p2 ⟹ truss(p2) ⊆ truss(p1), lifted to edge networks.
  EdgeDatabaseNetwork net = RandomEdgeNet(11);
  MiningResult r = RunEdgeTcfi(net, {.alpha = 0.0});
  std::map<Itemset, const PatternTruss*> by_pattern;
  for (const auto& t : r.trusses) by_pattern[t.pattern] = &t;
  for (const auto& [p, truss] : by_pattern) {
    if (p.size() < 2) continue;
    for (const Itemset& sub : p.AllSubsetsMinusOne()) {
      auto it = by_pattern.find(sub);
      ASSERT_NE(it, by_pattern.end()) << "Prop. 5.2 violated";
      EXPECT_TRUE(truss->IsSubgraphOf(*it->second));
    }
  }
}

TEST(EdgeMinerTest, CommunitiesExtractFromEdgeTrusses) {
  EdgeDatabaseNetwork net = TriangleNet();
  MiningResult r = RunEdgeTcfi(net, {.alpha = 0.0});
  auto communities = ExtractThemeCommunities(r.trusses);
  ASSERT_FALSE(communities.empty());
  bool found = false;
  for (const auto& c : communities) {
    if (c.theme == Itemset({0})) {
      EXPECT_EQ(c.vertices, (std::vector<VertexId>{0, 1, 2}));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(EdgeMinerTest, MaxPatternLengthRespected) {
  EdgeDatabaseNetwork net = RandomEdgeNet(13);
  MiningResult r = RunEdgeTcfi(net, {.alpha = 0.0, .max_pattern_length = 1});
  for (const auto& t : r.trusses) EXPECT_EQ(t.pattern.size(), 1u);
}

}  // namespace
}  // namespace tcf
