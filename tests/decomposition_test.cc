#include "core/decomposition.h"

#include <gtest/gtest.h>

#include <set>

#include "core/brute_force.h"
#include "test_util.h"

namespace tcf {
namespace {

using testing::ExpectSameTruss;
using testing::MakeFigureOneNetwork;
using testing::MakeRandomNetwork;

TEST(DecompositionTest, FigureOneLevels) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  ThemeNetwork tn = InduceThemeNetwork(net, Itemset({0}));
  TrussDecomposition d = TrussDecomposition::FromThemeNetwork(tn);
  // C*(0) has 9 edges (K4 + triangle, bridge dropped at eco=0). Two
  // levels: α1 = 0.2 removes the K4, α2 = 0.3 removes the triangle.
  ASSERT_EQ(d.levels().size(), 2u);
  // The K4 edges' cohesion is a *sum* of two quantized 0.1 terms, which
  // differs from QuantizeFrequency(0.2) by one grid unit.
  EXPECT_EQ(d.levels()[0].alpha, 2 * QuantizeFrequency(0.1));
  EXPECT_EQ(d.levels()[0].removed.size(), 6u);
  EXPECT_EQ(d.levels()[1].alpha, QuantizeFrequency(0.3));
  EXPECT_EQ(d.levels()[1].removed.size(), 3u);
  EXPECT_EQ(d.num_edges(), 9u);
  EXPECT_EQ(d.max_alpha(), QuantizeFrequency(0.3));
}

TEST(DecompositionTest, EmptyThemeNetwork) {
  ThemeNetwork tn;
  tn.pattern = Itemset({0});
  TrussDecomposition d = TrussDecomposition::FromThemeNetwork(tn);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.max_alpha(), 0);
  EXPECT_TRUE(d.TrussAtAlpha(0.0).empty());
}

TEST(DecompositionTest, LevelsStrictlyAscending) {
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 16,
                                           .edge_prob = 0.4,
                                           .seed = 3});
  for (ItemId item : net.ActiveItems()) {
    ThemeNetwork tn = InduceThemeNetwork(net, Itemset::Single(item));
    TrussDecomposition d = TrussDecomposition::FromThemeNetwork(tn);
    for (size_t k = 1; k < d.levels().size(); ++k) {
      EXPECT_GT(d.levels()[k].alpha, d.levels()[k - 1].alpha);
    }
    for (const auto& level : d.levels()) {
      EXPECT_GT(level.alpha, 0);
      EXPECT_FALSE(level.removed.empty());
    }
  }
}

TEST(DecompositionTest, LevelsPartitionBaseTruss) {
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 16,
                                           .edge_prob = 0.4,
                                           .seed = 4});
  for (ItemId item : net.ActiveItems()) {
    ThemeNetwork tn = InduceThemeNetwork(net, Itemset::Single(item));
    TrussDecomposition d = TrussDecomposition::FromThemeNetwork(tn);
    PatternTruss base = Mptd(tn, 0.0);
    std::set<Edge> seen;
    size_t total = 0;
    for (const auto& level : d.levels()) {
      for (const Edge& e : level.removed) {
        EXPECT_TRUE(seen.insert(e).second) << "duplicate edge across levels";
        ++total;
      }
    }
    EXPECT_EQ(total, base.num_edges());
    for (const Edge& e : base.edges) EXPECT_TRUE(seen.count(e));
  }
}

// Theorem 6.1 / Eq. 1: reconstruction equals direct MPTD for *every*
// alpha, including exactly at level boundaries.
class DecompositionReconstructTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecompositionReconstructTest, MatchesDirectMptdEverywhere) {
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 14,
                                           .edge_prob = 0.45,
                                           .num_items = 4,
                                           .seed = GetParam()});
  for (ItemId item : net.ActiveItems()) {
    ThemeNetwork tn = InduceThemeNetwork(net, Itemset::Single(item));
    TrussDecomposition d = TrussDecomposition::FromThemeNetwork(tn);

    // Probe: 0, each level alpha (boundary), midpoints, beyond max.
    std::vector<CohesionValue> probes = {0};
    for (const auto& level : d.levels()) {
      probes.push_back(level.alpha);
      probes.push_back(level.alpha - 1);
      probes.push_back(level.alpha + 1);
    }
    probes.push_back(d.max_alpha() + kCohesionScale);

    for (CohesionValue aq : probes) {
      if (aq < 0) continue;
      PatternTruss reconstructed = d.TrussAtAlphaQ(aq);
      PatternTruss direct = MptdQ(tn, aq);
      EXPECT_EQ(reconstructed.edges, direct.edges)
          << "item=" << item << " alpha_q=" << aq;
      EXPECT_EQ(reconstructed.vertices, direct.vertices);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecompositionReconstructTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(DecompositionTest, ReconstructionAtZeroIsBaseTruss) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  ThemeNetwork tn = InduceThemeNetwork(net, Itemset({0}));
  TrussDecomposition d = TrussDecomposition::FromThemeNetwork(tn);
  PatternTruss base = Mptd(tn, 0.0);
  PatternTruss rec = d.TrussAtAlpha(0.0);
  EXPECT_EQ(rec.edges, base.edges);
  EXPECT_EQ(rec.vertices, base.vertices);
  EXPECT_EQ(rec.frequencies, base.frequencies);
}

TEST(DecompositionTest, QueryBeyondMaxAlphaIsEmpty) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  ThemeNetwork tn = InduceThemeNetwork(net, Itemset({0}));
  TrussDecomposition d = TrussDecomposition::FromThemeNetwork(tn);
  EXPECT_TRUE(d.TrussAtAlphaQ(d.max_alpha()).empty());
  EXPECT_TRUE(d.TrussAtAlpha(1000.0).empty());
  // Just below max_alpha: non-empty (the last level).
  EXPECT_FALSE(d.TrussAtAlphaQ(d.max_alpha() - 1).empty());
}

TEST(DecompositionTest, SortedEdgesMatchesBase) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  ThemeNetwork tn = InduceThemeNetwork(net, Itemset({0}));
  TrussDecomposition d = TrussDecomposition::FromThemeNetwork(tn);
  PatternTruss base = Mptd(tn, 0.0);
  EXPECT_EQ(d.sorted_edges(), base.edges);
}

TEST(DecompositionTest, StoresPatternAndMemoryEstimate) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  ThemeNetwork tn = InduceThemeNetwork(net, Itemset({0}));
  TrussDecomposition d = TrussDecomposition::FromThemeNetwork(tn);
  EXPECT_EQ(d.pattern(), Itemset({0}));
  EXPECT_GT(d.MemoryBytes(), sizeof(TrussDecomposition));
}

// The paper's memory argument: L_p stores exactly |E*(0)| edges.
TEST(DecompositionTest, NoEdgeDuplicationAcrossLevels) {
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 20,
                                           .edge_prob = 0.35,
                                           .seed = 12});
  for (ItemId item : net.ActiveItems()) {
    ThemeNetwork tn = InduceThemeNetwork(net, Itemset::Single(item));
    TrussDecomposition d = TrussDecomposition::FromThemeNetwork(tn);
    size_t level_total = 0;
    for (const auto& l : d.levels()) level_total += l.removed.size();
    EXPECT_EQ(level_total, d.num_edges());
  }
}

}  // namespace
}  // namespace tcf
