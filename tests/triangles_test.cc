#include "graph/triangles.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "graph/graph_builder.h"
#include "graph/random_graphs.h"
#include "util/rng.h"

namespace tcf {
namespace {

Graph Complete(size_t n) {
  GraphBuilder b(n);
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId v = a + 1; v < n; ++v) EXPECT_TRUE(b.AddEdge(a, v).ok());
  }
  return b.Build();
}

TEST(TrianglesTest, TriangleGraphHasOne) {
  Graph g = Complete(3);
  EXPECT_EQ(CountTriangles(g), 1u);
}

TEST(TrianglesTest, K4HasFour) { EXPECT_EQ(CountTriangles(Complete(4)), 4u); }

TEST(TrianglesTest, K5HasTen) { EXPECT_EQ(CountTriangles(Complete(5)), 10u); }

TEST(TrianglesTest, TreeHasNone) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  ASSERT_TRUE(b.AddEdge(1, 3).ok());
  EXPECT_EQ(CountTriangles(b.Build()), 0u);
}

TEST(TrianglesTest, EmptyGraph) {
  GraphBuilder b(3);
  EXPECT_EQ(CountTriangles(b.Build()), 0u);
}

TEST(TrianglesTest, EdgeSupportCounts) {
  // Two triangles sharing edge {0,1}: 0-1-2 and 0-1-3.
  GraphBuilder b;
  for (auto [x, y] : std::vector<std::pair<VertexId, VertexId>>{
           {0, 1}, {0, 2}, {1, 2}, {0, 3}, {1, 3}}) {
    ASSERT_TRUE(b.AddEdge(x, y).ok());
  }
  Graph g = b.Build();
  auto support = CountEdgeTriangles(g);
  EXPECT_EQ(support[g.FindEdge(0, 1)], 2u);
  EXPECT_EQ(support[g.FindEdge(0, 2)], 1u);
  EXPECT_EQ(support[g.FindEdge(1, 3)], 1u);
}

TEST(TrianglesTest, ForEachTriangleReportsWingEdges) {
  Graph g = Complete(3);
  const EdgeId e01 = g.FindEdge(0, 1);
  int calls = 0;
  ForEachTriangle(g, e01, nullptr, [&](VertexId w, EdgeId e1, EdgeId e2) {
    ++calls;
    EXPECT_EQ(w, 2u);
    EXPECT_EQ(e1, g.FindEdge(0, 2));
    EXPECT_EQ(e2, g.FindEdge(1, 2));
  });
  EXPECT_EQ(calls, 1);
}

TEST(TrianglesTest, AliveMaskHidesTriangles) {
  Graph g = Complete(3);
  std::vector<uint8_t> alive(g.num_edges(), 1);
  alive[g.FindEdge(1, 2)] = 0;
  int calls = 0;
  ForEachTriangle(g, g.FindEdge(0, 1), &alive,
                  [&](VertexId, EdgeId, EdgeId) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(TrianglesTest, BruteForceAgreesOnK5) {
  EXPECT_EQ(CountTrianglesBruteForce(Complete(5)), 10u);
}

class TrianglePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrianglePropertyTest, FastMatchesBruteForceOnRandomGraphs) {
  Rng rng(GetParam());
  Graph g = ErdosRenyi(20, 60, rng);
  EXPECT_EQ(CountTriangles(g), CountTrianglesBruteForce(g));
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, TrianglePropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(TrianglesTest, SupportSumEqualsThreeTimesTriangles) {
  Rng rng(77);
  Graph g = ErdosRenyi(25, 90, rng);
  auto support = CountEdgeTriangles(g);
  uint64_t sum = 0;
  for (uint32_t s : support) sum += s;
  EXPECT_EQ(sum, 3 * CountTriangles(g));
}

}  // namespace
}  // namespace tcf
