// The rebuild-oracle differential suite for incremental TC-Tree
// maintenance (core/tc_tree_update.h). The contract under test: after
// every randomized update batch, the incrementally maintained index is
// *field-for-field identical* — arena order, node ids, child lists,
// every decomposition level — to a from-scratch TcTree::Build on the
// accumulated network, across BK-like / SYN / uniform generators, build
// thread counts, build budgets (max_nodes / max_depth), shard counts
// {1, 2, 8}, and warm composing caches kept live through the rolling
// delta swaps. The changed-root hints the updater emits are verified
// against their shard-skip meaning: a root *not* reported changed must
// head a subtree identical to the pre-update snapshot's.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/tc_tree.h"
#include "core/tc_tree_update.h"
#include "gen/checkin_generator.h"
#include "gen/syn_generator.h"
#include "net/database_network.h"
#include "serve/query_backend.h"
#include "serve/query_service.h"
#include "serve/shard_router.h"
#include "test_util.h"
#include "tx/itemset.h"
#include "util/rng.h"

namespace tcf {
namespace {

// ---------------------------------------------------------------------
// Network factories. Each is called twice per scenario with the same
// seed: once for the updater's authoritative copy, once for the oracle
// that replays the same mutations and rebuilds from scratch.
// ---------------------------------------------------------------------

DatabaseNetwork TinyBkLike(uint64_t seed) {
  CheckinParams p;
  p.num_users = 48;
  p.num_locations = 14;
  p.friends_k = 3;
  p.periods_per_user = 10;
  p.favorites_per_user = 5;
  p.seed = seed;
  return GenerateCheckinNetwork(p);
}

DatabaseNetwork TinySyn(uint64_t seed) {
  SynParams p;
  p.num_vertices = 60;
  p.num_edges = 240;
  p.num_items = 16;
  p.num_seeds = 8;
  p.seed = seed;
  return GenerateSynNetwork(p);
}

DatabaseNetwork TinyUniform(uint64_t seed) {
  testing::RandomNetOptions o;
  o.num_vertices = 16;
  o.edge_prob = 0.4;
  o.num_items = 6;
  o.tx_per_vertex = 5;
  o.seed = seed;
  return testing::MakeRandomNetwork(o);
}

// ---------------------------------------------------------------------
// Randomized update batches. The same NetworkUpdate is applied to the
// updater (through Apply) and replayed onto the oracle network, so both
// sides accumulate identical state.
// ---------------------------------------------------------------------

NetworkUpdate RandomBatch(Rng& rng, const DatabaseNetwork& net, size_t ops) {
  NetworkUpdate u;
  const size_t v = net.num_vertices();
  const size_t items = net.num_items();
  for (size_t i = 0; i < ops; ++i) {
    if (rng.NextBool(0.3) && v >= 2) {
      VertexId a = static_cast<VertexId>(rng.NextUint64(v));
      VertexId b = static_cast<VertexId>(rng.NextUint64(v));
      if (a == b) b = (b + 1) % v;
      u.edges.push_back(MakeEdge(a, b));
    } else {
      NetworkUpdate::TxInsert tx;
      tx.vertex = static_cast<VertexId>(rng.NextUint64(v));
      const size_t len = 1 + rng.NextUint64(3);
      std::vector<ItemId> ids;
      for (size_t k = 0; k < len; ++k) {
        ids.push_back(static_cast<ItemId>(rng.NextUint64(items)));
      }
      tx.items = Itemset(std::move(ids));
      u.transactions.push_back(std::move(tx));
    }
  }
  return u;
}

void ReplayOnOracle(DatabaseNetwork& oracle, const NetworkUpdate& u) {
  for (const NetworkUpdate::TxInsert& tx : u.transactions) {
    ASSERT_TRUE(oracle.AddTransaction(tx.vertex, tx.items).ok());
  }
  for (const Edge& e : u.edges) {
    ASSERT_TRUE(oracle.AddEdge(e.u, e.v).ok());
  }
}

// ---------------------------------------------------------------------
// Field-for-field tree equality.
// ---------------------------------------------------------------------

void ExpectDecompositionsEqual(const TrussDecomposition& a,
                               const TrussDecomposition& b) {
  EXPECT_EQ(a.pattern(), b.pattern());
  EXPECT_EQ(a.sorted_edges(), b.sorted_edges());
  EXPECT_EQ(a.vertices(), b.vertices());
  EXPECT_EQ(a.frequencies(), b.frequencies());  // bitwise: same arithmetic
  ASSERT_EQ(a.levels().size(), b.levels().size());
  for (size_t i = 0; i < a.levels().size(); ++i) {
    EXPECT_EQ(a.levels()[i].alpha, b.levels()[i].alpha) << "level " << i;
    EXPECT_EQ(a.levels()[i].removed, b.levels()[i].removed) << "level " << i;
  }
}

void ExpectTreesEqual(const TcTree& incremental, const TcTree& rebuilt,
                      const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(incremental.num_nodes(), rebuilt.num_nodes());
  for (TcTree::NodeId id = 0; id <= incremental.num_nodes(); ++id) {
    SCOPED_TRACE("node " + std::to_string(id));
    const TcTree::Node& a = incremental.node(id);
    const TcTree::Node& b = rebuilt.node(id);
    EXPECT_EQ(a.item, b.item);
    EXPECT_EQ(a.parent, b.parent);
    EXPECT_EQ(a.children, b.children);
    ExpectDecompositionsEqual(a.decomposition, b.decomposition);
  }
}

void ExpectSubtreesEqual(const TcTree& a, TcTree::NodeId na, const TcTree& b,
                         TcTree::NodeId nb) {
  EXPECT_EQ(a.node(na).item, b.node(nb).item);
  ExpectDecompositionsEqual(a.node(na).decomposition,
                            b.node(nb).decomposition);
  ASSERT_EQ(a.node(na).children.size(), b.node(nb).children.size());
  for (size_t i = 0; i < a.node(na).children.size(); ++i) {
    ExpectSubtreesEqual(a, a.node(na).children[i], b, b.node(nb).children[i]);
  }
}

/// The shard-skip contract behind `changed_roots`: a layer-1 root the
/// updater did NOT report changed must head a subtree identical to the
/// pre-update snapshot's — in both directions (present in one iff
/// present in the other).
void ExpectUnchangedRootsStable(const TcTree& before, const TcTree& after,
                                const std::vector<ItemId>& changed_roots) {
  auto is_changed = [&](ItemId item) {
    return std::binary_search(changed_roots.begin(), changed_roots.end(),
                              item);
  };
  auto root_child = [](const TcTree& t, ItemId item) -> TcTree::NodeId {
    for (TcTree::NodeId c : t.node(TcTree::kRoot).children) {
      if (t.node(c).item == item) return c;
    }
    return TcTree::kNoParent;
  };
  for (TcTree::NodeId c : after.node(TcTree::kRoot).children) {
    const ItemId item = after.node(c).item;
    if (is_changed(item)) continue;
    SCOPED_TRACE("unchanged root item " + std::to_string(item));
    const TcTree::NodeId old_c = root_child(before, item);
    ASSERT_NE(old_c, TcTree::kNoParent);
    ExpectSubtreesEqual(after, c, before, old_c);
  }
  for (TcTree::NodeId c : before.node(TcTree::kRoot).children) {
    const ItemId item = before.node(c).item;
    if (is_changed(item)) continue;
    EXPECT_NE(root_child(after, item), TcTree::kNoParent)
        << "unchanged root " << item << " vanished";
  }
}

// ---------------------------------------------------------------------
// The core differential: K random batches, incremental vs full rebuild
// after every one of them.
// ---------------------------------------------------------------------

void RunDifferential(DatabaseNetwork updater_net, DatabaseNetwork oracle_net,
                     const TcTreeOptions& update_options,
                     const TcTreeOptions& oracle_options, uint64_t seed,
                     size_t batches, size_t ops_per_batch) {
  TcTree initial = TcTree::Build(updater_net, update_options);
  ExpectTreesEqual(initial, TcTree::Build(oracle_net, oracle_options),
                   "initial builds disagree");
  IndexUpdater updater(std::move(updater_net), std::move(initial),
                       /*sink=*/nullptr, update_options);

  Rng rng(seed * 7919 + 17);
  for (size_t b = 0; b < batches; ++b) {
    NetworkUpdate batch = RandomBatch(rng, updater.network(), ops_per_batch);
    const TcTree before = updater.tree();
    ReplayOnOracle(oracle_net, batch);

    // Check the dirty/changed hints against a standalone UpdateTcTree
    // call too (Apply consumes the batch, so compute dirty first).
    const std::vector<ItemId> dirty =
        ComputeDirtyItems(updater.network(), batch);

    auto outcome = updater.Apply(std::move(batch));
    ASSERT_TRUE(outcome.ok()) << outcome.status().message();
    EXPECT_EQ(outcome->dirty_items, dirty.size());

    const TcTree oracle = TcTree::Build(oracle_net, oracle_options);
    ExpectTreesEqual(updater.tree(), oracle,
                     "batch " + std::to_string(b) + " seed " +
                         std::to_string(seed));
    EXPECT_EQ(outcome->tree_nodes, oracle.num_nodes());

    if (!outcome->stats.full_rebuild && !oracle.build_stats().truncated) {
      // UpdateTcTree is pure in its inputs: re-running it on the
      // pre-update tree recovers the changed-root hints Apply consumed.
      TcTreeUpdateResult redo =
          UpdateTcTree(before, updater.network(), dirty, update_options);
      EXPECT_EQ(redo.changed_roots.size(), outcome->changed_roots);
      ExpectUnchangedRootsStable(before, updater.tree(), redo.changed_roots);
    }
  }
}

TEST(IncrementalUpdateDifferential, BkLikeSingleThread) {
  for (uint64_t seed : {1, 2, 3}) {
    RunDifferential(TinyBkLike(seed), TinyBkLike(seed), {}, {}, seed,
                    /*batches=*/4, /*ops_per_batch=*/4);
  }
}

TEST(IncrementalUpdateDifferential, SynSingleThread) {
  for (uint64_t seed : {4, 5, 6}) {
    RunDifferential(TinySyn(seed), TinySyn(seed), {}, {}, seed,
                    /*batches=*/4, /*ops_per_batch=*/4);
  }
}

TEST(IncrementalUpdateDifferential, UniformManySmallBatches) {
  for (uint64_t seed : {7, 8, 9, 10}) {
    RunDifferential(TinyUniform(seed), TinyUniform(seed), {}, {}, seed,
                    /*batches=*/8, /*ops_per_batch=*/2);
  }
}

// The incremental replay with a parallel pool must equal the
// single-threaded from-scratch build — thread-count independence of the
// update path, piggybacking on the deterministic wave commit.
TEST(IncrementalUpdateDifferential, ParallelReplayMatchesSequentialRebuild) {
  TcTreeOptions parallel;
  parallel.num_threads = 4;
  TcTreeOptions sequential;
  sequential.num_threads = 1;
  for (uint64_t seed : {11, 12}) {
    RunDifferential(TinyBkLike(seed), TinyBkLike(seed), parallel, sequential,
                    seed, /*batches=*/3, /*ops_per_batch=*/5);
  }
}

// Budgeted builds: the replay must reproduce the rebuild's max_depth
// cut exactly, and trip a max_nodes budget at the identical node.
TEST(IncrementalUpdateDifferential, DepthCappedBuilds) {
  TcTreeOptions capped;
  capped.max_depth = 2;
  for (uint64_t seed : {13, 14}) {
    RunDifferential(TinyBkLike(seed), TinyBkLike(seed), capped, capped, seed,
                    /*batches=*/3, /*ops_per_batch=*/4);
  }
}

TEST(IncrementalUpdateDifferential, NodeBudgetTripsAtSameNode) {
  const uint64_t seed = 15;
  DatabaseNetwork updater_net = TinyUniform(seed);
  DatabaseNetwork oracle_net = TinyUniform(seed);
  // Pick a budget the *initial* tree fits under but update growth can
  // overflow; whether or not the replay trips it, it must match the
  // budgeted rebuild field-for-field.
  TcTreeOptions unbounded;
  const size_t full = TcTree::Build(updater_net, unbounded).num_nodes();
  TcTreeOptions budgeted;
  budgeted.max_nodes = full + 3;
  RunDifferential(std::move(updater_net), std::move(oracle_net), budgeted,
                  budgeted, seed, /*batches=*/6, /*ops_per_batch=*/4);
}

// A truncated live tree cannot prove absence-means-empty, so the
// updater must fall back to a full rebuild — and still match the
// oracle.
TEST(IncrementalUpdate, TruncatedTreeFallsBackToFullRebuild) {
  const uint64_t seed = 16;
  DatabaseNetwork updater_net = TinyUniform(seed);
  DatabaseNetwork oracle_net = TinyUniform(seed);
  TcTreeOptions budgeted;
  budgeted.max_nodes = 4;  // far below the full tree: truncated for sure
  TcTree initial = TcTree::Build(updater_net, budgeted);
  ASSERT_TRUE(initial.build_stats().truncated);
  IndexUpdater updater(std::move(updater_net), std::move(initial), nullptr,
                       budgeted);

  Rng rng(seed);
  NetworkUpdate batch = RandomBatch(rng, updater.network(), 3);
  ReplayOnOracle(oracle_net, batch);
  auto outcome = updater.Apply(std::move(batch));
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->stats.full_rebuild);
  ExpectTreesEqual(updater.tree(), TcTree::Build(oracle_net, budgeted),
                   "fallback rebuild");
}

TEST(IncrementalUpdate, EmptyFlushIsANoop) {
  DatabaseNetwork net = TinyUniform(17);
  TcTree tree = TcTree::Build(net);
  const size_t nodes = tree.num_nodes();
  IndexUpdater updater(std::move(net), std::move(tree), nullptr);
  auto outcome = updater.Flush();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->batches, 0u);
  EXPECT_EQ(outcome->transactions, 0u);
  EXPECT_EQ(outcome->tree_nodes, nodes);
  EXPECT_EQ(updater.tree().num_nodes(), nodes);
}

TEST(IncrementalUpdate, InvalidBatchIsRejectedWithoutMutating) {
  DatabaseNetwork net = TinyUniform(18);
  DatabaseNetwork oracle_net = TinyUniform(18);
  TcTree tree = TcTree::Build(net);
  IndexUpdater updater(std::move(net), std::move(tree), nullptr);
  const size_t edges_before = updater.network().num_edges();

  NetworkUpdate bad;
  NetworkUpdate::TxInsert good_tx;
  good_tx.vertex = 0;
  good_tx.items = Itemset::Single(0);
  bad.transactions.push_back(good_tx);  // valid line first...
  NetworkUpdate::TxInsert bad_tx;
  bad_tx.vertex = static_cast<VertexId>(updater.network().num_vertices());
  bad_tx.items = Itemset::Single(0);
  bad.transactions.push_back(bad_tx);  // ...does not save the batch
  auto outcome = updater.Apply(std::move(bad));
  EXPECT_FALSE(outcome.ok());

  // Whole batch rejected: no transaction landed, the index still equals
  // the oracle of the *unmodified* network.
  EXPECT_EQ(updater.network().num_edges(), edges_before);
  ExpectTreesEqual(updater.tree(), TcTree::Build(oracle_net),
                   "tree after rejected batch");

  // Self-loops and unknown items are rejected the same way.
  NetworkUpdate loop;
  loop.edges.push_back({0, 0});
  EXPECT_FALSE(updater.Apply(std::move(loop)).ok());
  NetworkUpdate unknown;
  NetworkUpdate::TxInsert tx;
  tx.vertex = 0;
  tx.items = Itemset::Single(
      static_cast<ItemId>(updater.network().num_items()));
  unknown.transactions.push_back(tx);
  EXPECT_FALSE(updater.Apply(std::move(unknown)).ok());
}

TEST(IncrementalUpdate, EnqueuedBatchesCoalesceIntoOneFlush) {
  DatabaseNetwork net = TinyUniform(19);
  DatabaseNetwork oracle_net = TinyUniform(19);
  TcTree tree = TcTree::Build(net);
  IndexUpdater updater(std::move(net), std::move(tree), nullptr);

  Rng rng(19);
  for (int i = 0; i < 3; ++i) {
    NetworkUpdate u = RandomBatch(rng, updater.network(), 2);
    ReplayOnOracle(oracle_net, u);
    updater.Enqueue(std::move(u));
  }
  EXPECT_EQ(updater.pending(), 3u);
  auto outcome = updater.Flush();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->batches, 3u);
  EXPECT_EQ(updater.pending(), 0u);
  ExpectTreesEqual(updater.tree(), TcTree::Build(oracle_net),
                   "coalesced flush");
}

// ---------------------------------------------------------------------
// Serving-layer differential: the updater feeds a live backend through
// ApplyUpdatedSnapshot (targeted cache invalidation, shard-skipping
// rolling swaps) while warm composing caches keep serving. Every answer
// after every batch must equal a cache-less service over a from-scratch
// rebuild.
// ---------------------------------------------------------------------

QueryServiceOptions WarmCacheOptions() {
  QueryServiceOptions o;
  o.num_threads = 1;
  o.cache_bytes = size_t{8} << 20;
  o.cache_composition = true;
  o.cache_admit_derived = true;
  o.cache_compose_min_walk_us = 0;  // engage composition unconditionally
  o.tracing = false;
  return o;
}

QueryServiceOptions OracleOptions() {
  QueryServiceOptions o;
  o.num_threads = 1;
  o.cache_bytes = 0;
  o.tracing = false;
  return o;
}

ServeQuery RandomQuery(const std::vector<ItemId>& items, Rng& rng) {
  static constexpr double kAlphas[] = {0.0, 0.02, 0.05, 0.1, 0.25};
  const size_t len = 1 + rng.NextUint64(4);
  std::vector<ItemId> picked;
  for (size_t i = 0; i < len; ++i) {
    picked.push_back(items[rng.NextUint64(items.size())]);
  }
  return ServeQuery{Itemset(std::move(picked)),
                    kAlphas[rng.NextUint64(std::size(kAlphas))]};
}

void ExpectSameAnswer(const TcTreeQueryResult& expected,
                      const TcTreeQueryResult& actual,
                      const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(expected.trusses.size(), actual.trusses.size());
  for (size_t i = 0; i < expected.trusses.size(); ++i) {
    testing::ExpectSameTruss(expected.trusses[i], actual.trusses[i],
                             "truss " + std::to_string(i));
  }
}

void RunBackendDifferential(size_t num_shards, uint64_t seed) {
  DatabaseNetwork updater_net = TinyBkLike(seed);
  DatabaseNetwork oracle_net = TinyBkLike(seed);
  TcTree initial = TcTree::Build(updater_net);

  std::unique_ptr<QueryBackend> backend;
  if (num_shards == 1) {
    backend = std::make_unique<QueryService>(
        TcTree::Build(updater_net), updater_net.dictionary(),
        WarmCacheOptions());
  } else {
    backend = std::make_unique<ShardedQueryService>(
        TcTree::Build(updater_net), updater_net.dictionary(), num_shards,
        WarmCacheOptions());
  }

  IndexUpdater updater(
      std::move(updater_net), std::move(initial),
      [&](TcTree tree, const std::vector<ItemId>& changed_roots,
          const std::vector<ItemId>& dirty_items) {
        return backend->ApplyUpdatedSnapshot(std::move(tree), changed_roots,
                                             dirty_items);
      });

  Rng rng(seed * 31 + 7);
  const std::vector<ItemId> items = updater.network().ActiveItems();
  ASSERT_FALSE(items.empty());

  for (size_t b = 0; b < 4; ++b) {
    // A fixed query set per round, each asked twice: the second ask and
    // later rounds exercise exact hits, retagged survivors, and covers
    // composed from them.
    std::vector<ServeQuery> queries;
    for (int q = 0; q < 10; ++q) queries.push_back(RandomQuery(items, rng));

    QueryService oracle(TcTree::Build(oracle_net), oracle_net.dictionary(),
                        OracleOptions());
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t q = 0; q < queries.size(); ++q) {
        const auto expected = oracle.Execute(queries[q]);
        const auto actual = backend->Execute(queries[q]);
        ASSERT_NE(actual, nullptr);
        ExpectSameAnswer(*expected, *actual,
                         "round " + std::to_string(b) + " pass " +
                             std::to_string(pass) + " query " +
                             std::to_string(q) + " shards " +
                             std::to_string(num_shards));
      }
    }

    NetworkUpdate batch = RandomBatch(rng, updater.network(), 4);
    ReplayOnOracle(oracle_net, batch);
    auto outcome = updater.Apply(std::move(batch));
    ASSERT_TRUE(outcome.ok()) << outcome.status().message();
    EXPECT_LE(outcome->shards_swapped, num_shards);

    // Post-swap, pre-warm: the same queries again (stale survivors or a
    // missed invalidation would surface right here), then verify the
    // oracle of the *new* network agrees.
    QueryService fresh(TcTree::Build(oracle_net), oracle_net.dictionary(),
                       OracleOptions());
    for (size_t q = 0; q < queries.size(); ++q) {
      const auto expected = fresh.Execute(queries[q]);
      const auto actual = backend->Execute(queries[q]);
      ASSERT_NE(actual, nullptr);
      ExpectSameAnswer(*expected, *actual,
                       "post-update round " + std::to_string(b) + " query " +
                           std::to_string(q) + " shards " +
                           std::to_string(num_shards));
    }
  }
}

TEST(IncrementalUpdateServing, WarmCacheParityUnsharded) {
  RunBackendDifferential(/*num_shards=*/1, /*seed=*/21);
}

TEST(IncrementalUpdateServing, WarmCacheParityTwoShards) {
  RunBackendDifferential(/*num_shards=*/2, /*seed=*/22);
}

TEST(IncrementalUpdateServing, WarmCacheParityEightShards) {
  RunBackendDifferential(/*num_shards=*/8, /*seed=*/23);
}

// An update whose dirty set misses a shard must leave that shard's
// snapshot untouched (rolling swap skips it) and its cache intact.
TEST(IncrementalUpdateServing, UntouchedShardsSkipTheSwap) {
  DatabaseNetwork net = TinyBkLike(24);
  TcTree initial = TcTree::Build(net);
  ShardedQueryService backend(TcTree::Build(net), net.dictionary(),
                              /*num_shards=*/8, WarmCacheOptions());
  IndexUpdater updater(
      std::move(net), std::move(initial),
      [&](TcTree tree, const std::vector<ItemId>& roots,
          const std::vector<ItemId>& dirty) {
        return backend.ApplyUpdatedSnapshot(std::move(tree), roots, dirty);
      });

  // A single one-item transaction dirties only the items active at one
  // vertex — with 8 shards, usually a strict subset of the shards.
  NetworkUpdate u;
  NetworkUpdate::TxInsert tx;
  tx.vertex = 0;
  tx.items = Itemset::Single(0);
  u.transactions.push_back(tx);

  auto outcome = updater.Apply(std::move(u));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(backend.updates_applied(), 1u);
  EXPECT_LE(outcome->shards_swapped, 8u);
  EXPECT_EQ(outcome->changed_roots == 0, outcome->shards_swapped == 0);
}

}  // namespace
}  // namespace tcf
