// Reproduces the #P-hardness construction of Appendix A.1: a triangle
// whose three vertices carry identical copies of a transaction database d
// has exactly one theme community per pattern p with f(p) > α — so theme
// community counting solves Frequent Pattern Counting.
#include <gtest/gtest.h>

#include <set>

#include "core/brute_force.h"
#include "core/communities.h"
#include "core/tcfi.h"
#include "test_util.h"
#include "tx/fim.h"

namespace tcf {
namespace {

DatabaseNetwork TriangleOfIdenticalDatabases(
    const std::vector<std::vector<ItemId>>& transactions) {
  std::vector<std::vector<std::vector<ItemId>>> tx(3, transactions);
  return testing::MakeNetwork(3, {{0, 1}, {1, 2}, {0, 2}}, tx);
}

class HardnessConstructionTest : public ::testing::TestWithParam<double> {};

TEST_P(HardnessConstructionTest, CommunityCountEqualsFrequentPatternCount) {
  const double alpha = GetParam();
  const std::vector<std::vector<ItemId>> d = {
      {0, 1}, {0, 1, 2}, {2}, {0, 1}, {1, 2}, {0}};
  DatabaseNetwork net = TriangleOfIdenticalDatabases(d);

  // FPC answer: #patterns with f(p) > alpha in d.
  TransactionDb db;
  for (const auto& t : d) db.Add(Itemset(t));
  const size_t fpc = MineFrequentItemsetsBruteForce(db, alpha).size();

  // Theme community answer on the constructed network.
  MiningResult mined = RunTcfi(net, {.alpha = alpha});
  auto communities = ExtractThemeCommunities(mined.trusses);

  EXPECT_EQ(communities.size(), fpc) << "alpha=" << alpha;

  // Every community is the full triangle (eco_ij = f(p) on each edge).
  for (const auto& c : communities) {
    EXPECT_EQ(c.vertices, (std::vector<VertexId>{0, 1, 2}));
    EXPECT_EQ(c.edges.size(), 3u);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, HardnessConstructionTest,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.9));

TEST(HardnessConstructionTest, EdgeCohesionEqualsPatternFrequency) {
  // In the construction, every edge's cohesion equals f(p): one triangle,
  // all three frequencies equal.
  const std::vector<std::vector<ItemId>> d = {{0}, {0}, {1}};
  DatabaseNetwork net = TriangleOfIdenticalDatabases(d);
  MiningResult mined = RunTcfi(net, {.alpha = 0.0});
  for (const auto& truss : mined.trusses) {
    const double f = net.db(0).Frequency(truss.pattern);
    for (CohesionValue c : truss.edge_cohesions) {
      EXPECT_EQ(c, QuantizeFrequency(f)) << truss.pattern.ToString();
    }
  }
}

TEST(HardnessConstructionTest, ObeysOracleExactly) {
  const std::vector<std::vector<ItemId>> d = {{0, 1}, {1, 2}, {0, 2}};
  DatabaseNetwork net = TriangleOfIdenticalDatabases(d);
  for (double alpha : {0.0, 0.2, 0.4}) {
    testing::ExpectSameResults(RunTcfi(net, {.alpha = alpha}),
                               BruteForceMineAll(net, alpha),
                               "alpha=" + std::to_string(alpha));
  }
}

}  // namespace
}  // namespace tcf
