#include "graph/components.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace tcf {
namespace {

TEST(ComponentsTest, SingleComponent) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  auto cc = ConnectedComponents(b.Build());
  EXPECT_EQ(cc.num_components, 1u);
  EXPECT_EQ(cc.label[0], cc.label[2]);
}

TEST(ComponentsTest, TwoComponentsPlusIsolated) {
  GraphBuilder b(6);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(3, 4).ok());
  auto cc = ConnectedComponents(b.Build());
  EXPECT_EQ(cc.num_components, 4u);  // {0,1}, {2}, {3,4}, {5}
  EXPECT_EQ(cc.label[0], cc.label[1]);
  EXPECT_EQ(cc.label[3], cc.label[4]);
  EXPECT_NE(cc.label[0], cc.label[3]);
  EXPECT_NE(cc.label[2], cc.label[5]);
}

TEST(ComponentsTest, EmptyGraph) {
  GraphBuilder b;
  auto cc = ConnectedComponents(b.Build());
  EXPECT_EQ(cc.num_components, 0u);
  EXPECT_TRUE(cc.label.empty());
}

TEST(ComponentsOfEdgesTest, SplitsDisconnectedEdgeSets) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {5, 6}};
  auto comps = ConnectedComponentsOfEdges(edges);
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0], (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(comps[1], (std::vector<VertexId>{5, 6}));
}

TEST(ComponentsOfEdgesTest, EmptyEdgesNoComponents) {
  EXPECT_TRUE(ConnectedComponentsOfEdges({}).empty());
}

TEST(ComponentsOfEdgesTest, IgnoresVerticesNotOnEdges) {
  // Vertex ids are arbitrary (global ids from a bigger network).
  std::vector<Edge> edges = {{100, 200}};
  auto comps = ConnectedComponentsOfEdges(edges);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0], (std::vector<VertexId>{100, 200}));
}

TEST(ComponentsOfEdgesTest, OrderedBySmallestVertex) {
  std::vector<Edge> edges = {{7, 8}, {0, 3}, {4, 5}};
  auto comps = ConnectedComponentsOfEdges(edges);
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(comps[0].front(), 0u);
  EXPECT_EQ(comps[1].front(), 4u);
  EXPECT_EQ(comps[2].front(), 7u);
}

TEST(GroupEdgesTest, EdgesAlignWithComponents) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 2}, {5, 6}};
  auto vgroups = ConnectedComponentsOfEdges(edges);
  auto egroups = GroupEdgesByComponent(edges);
  ASSERT_EQ(vgroups.size(), egroups.size());
  ASSERT_EQ(egroups.size(), 2u);
  EXPECT_EQ(egroups[0].size(), 3u);
  EXPECT_EQ(egroups[1].size(), 1u);
  EXPECT_EQ(egroups[1][0], (Edge{5, 6}));
}

TEST(GroupEdgesTest, BridgeMergesComponents) {
  std::vector<Edge> edges = {{0, 1}, {2, 3}, {1, 2}};
  auto comps = ConnectedComponentsOfEdges(edges);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].size(), 4u);
}

}  // namespace
}  // namespace tcf
