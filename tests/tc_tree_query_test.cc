#include "core/tc_tree_query.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/brute_force.h"
#include "core/mptd.h"
#include "test_util.h"

namespace tcf {
namespace {

using testing::MakeFigureOneNetwork;
using testing::MakeRandomNetwork;

// Oracle for query (q, α): direct MPTD over every non-empty sub-pattern
// of q.
std::map<Itemset, PatternTruss> QueryOracle(const DatabaseNetwork& net,
                                            const Itemset& q, double alpha) {
  std::map<Itemset, PatternTruss> out;
  const auto& items = q.items();
  for (uint64_t mask = 1; mask < (1ULL << items.size()); ++mask) {
    std::vector<ItemId> sub;
    for (size_t b = 0; b < items.size(); ++b) {
      if (mask & (1ULL << b)) sub.push_back(items[b]);
    }
    Itemset p(std::move(sub));
    PatternTruss t = Mptd(InduceThemeNetwork(net, p), alpha);
    if (!t.empty()) out.emplace(p, std::move(t));
  }
  return out;
}

class QueryOracleTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(QueryOracleTest, QueryMatchesSubsetEnumeration) {
  const auto [seed, alpha] = GetParam();
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 13,
                                           .edge_prob = 0.4,
                                           .num_items = 5,
                                           .seed = seed});
  TcTree tree = TcTree::Build(net);

  for (const Itemset& q : {Itemset({0, 1, 2, 3, 4}), Itemset({0, 2}),
                           Itemset({1, 3, 4}), Itemset({2})}) {
    auto oracle = QueryOracle(net, q, alpha);
    TcTreeQueryResult got = QueryTcTree(tree, q, alpha);
    ASSERT_EQ(got.trusses.size(), oracle.size())
        << "q=" << q.ToString() << " alpha=" << alpha;
    EXPECT_EQ(got.retrieved_nodes, oracle.size());
    for (const PatternTruss& t : got.trusses) {
      auto it = oracle.find(t.pattern);
      ASSERT_NE(it, oracle.end()) << t.pattern.ToString();
      EXPECT_EQ(t.edges, it->second.edges);
      EXPECT_EQ(t.vertices, it->second.vertices);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndAlphas, QueryOracleTest,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),
                       ::testing::Values(0.0, 0.1, 0.4)));

TEST(TcTreeQueryTest, FigureOneQba) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  const Itemset everything({0, 1});
  // QBA at α = 0: both item trusses.
  EXPECT_EQ(QueryTcTree(tree, everything, 0.0).retrieved_nodes, 2u);
  // α = 0.25 kills the K4 of item 0 but not its triangle; item 1 network
  // has much higher cohesions.
  auto r = QueryTcTree(tree, everything, 0.25);
  EXPECT_EQ(r.retrieved_nodes, 2u);
  for (const auto& t : r.trusses) {
    if (t.pattern == Itemset({0})) {
      EXPECT_EQ(t.edges, testing::EdgeList({{6, 7}, {6, 8}, {7, 8}}));
    }
  }
  // Beyond every max alpha: nothing.
  const double beyond = CohesionToDouble(tree.MaxAlphaOverNodes()) + 1.0;
  EXPECT_EQ(QueryTcTree(tree, everything, beyond).retrieved_nodes, 0u);
}

TEST(TcTreeQueryTest, QueryByPatternRestrictsToSubsets) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  auto r0 = QueryTcTree(tree, Itemset({0}), 0.0);
  ASSERT_EQ(r0.trusses.size(), 1u);
  EXPECT_EQ(r0.trusses[0].pattern, Itemset({0}));
  auto r1 = QueryTcTree(tree, Itemset({1}), 0.0);
  ASSERT_EQ(r1.trusses.size(), 1u);
  EXPECT_EQ(r1.trusses[0].pattern, Itemset({1}));
}

TEST(TcTreeQueryTest, UnknownItemsInQueryAreHarmless) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  auto r = QueryTcTree(tree, Itemset({0, 99}), 0.0);
  ASSERT_EQ(r.trusses.size(), 1u);
  EXPECT_EQ(r.trusses[0].pattern, Itemset({0}));
}

TEST(TcTreeQueryTest, EmptyQueryPatternRetrievesNothing) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  auto r = QueryTcTree(tree, Itemset(), 0.0);
  EXPECT_EQ(r.retrieved_nodes, 0u);
  EXPECT_TRUE(r.trusses.empty());
}

TEST(TcTreeQueryTest, SkipMaterializationLeavesVerticesEmpty) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  auto r = QueryTcTree(tree, Itemset({0, 1}), 0.0,
                       {.materialize_vertices = false});
  ASSERT_FALSE(r.trusses.empty());
  for (const auto& t : r.trusses) {
    EXPECT_FALSE(t.edges.empty());
    EXPECT_TRUE(t.vertices.empty());
  }
}

TEST(TcTreeQueryTest, MinTrussEdgesFiltersResultsNotTraversal) {
  DatabaseNetwork net = MakeRandomNetwork({.num_items = 5, .seed = 91});
  TcTree tree = TcTree::Build(net);
  const Itemset q({0, 1, 2, 3, 4});
  auto all = QueryTcTree(tree, q, 0.0);
  if (all.trusses.empty()) GTEST_SKIP() << "no trusses at this seed";
  // Pick a threshold between min and max edge counts.
  size_t min_e = SIZE_MAX, max_e = 0;
  for (const auto& t : all.trusses) {
    min_e = std::min(min_e, t.edges.size());
    max_e = std::max(max_e, t.edges.size());
  }
  const size_t cut = (min_e + max_e) / 2 + 1;
  auto filtered = QueryTcTree(tree, q, 0.0, {.min_truss_edges = cut});
  for (const auto& t : filtered.trusses) EXPECT_GE(t.edges.size(), cut);
  // Exactly the big ones survive — the filter must not prune subtrees.
  size_t expect = 0;
  for (const auto& t : all.trusses) {
    if (t.edges.size() >= cut) ++expect;
  }
  EXPECT_EQ(filtered.trusses.size(), expect);
}

TEST(TcTreeQueryTest, MaxResultsCapsRetrieval) {
  DatabaseNetwork net = MakeRandomNetwork({.num_items = 5, .seed = 93});
  TcTree tree = TcTree::Build(net);
  const Itemset q({0, 1, 2, 3, 4});
  auto all = QueryTcTree(tree, q, 0.0);
  if (all.retrieved_nodes < 3) GTEST_SKIP() << "too few results";
  auto capped = QueryTcTree(tree, q, 0.0, {.max_results = 2});
  EXPECT_EQ(capped.retrieved_nodes, 2u);
  EXPECT_EQ(capped.trusses.size(), 2u);
  // The capped prefix matches the full run's BFS order.
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(capped.trusses[i].pattern, all.trusses[i].pattern);
  }
}

TEST(TcTreeQueryTest, VisitedNodesAtLeastRetrieved) {
  DatabaseNetwork net = MakeRandomNetwork({.num_items = 5, .seed = 61});
  TcTree tree = TcTree::Build(net);
  auto r = QueryTcTree(tree, Itemset({0, 1, 2, 3, 4}), 0.0);
  EXPECT_GE(r.visited_nodes, r.retrieved_nodes);
}

TEST(TcTreeQueryTest, MonotoneInAlpha) {
  DatabaseNetwork net = MakeRandomNetwork({.num_items = 5, .seed = 67});
  TcTree tree = TcTree::Build(net);
  const Itemset q({0, 1, 2, 3, 4});
  uint64_t prev = QueryTcTree(tree, q, 0.0).retrieved_nodes;
  for (double alpha : {0.1, 0.2, 0.5, 1.0}) {
    uint64_t cur = QueryTcTree(tree, q, alpha).retrieved_nodes;
    EXPECT_LE(cur, prev) << alpha;
    prev = cur;
  }
}

TEST(TcTreeQueryTest, QueryThemeCommunitiesSplitsComponents) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  auto communities = QueryThemeCommunities(tree, Itemset({0}), 0.15);
  // Item 0 truss at 0.15: K4 component + triangle component.
  ASSERT_EQ(communities.size(), 2u);
  EXPECT_EQ(communities[0].vertices, (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_EQ(communities[1].vertices, (std::vector<VertexId>{6, 7, 8}));
  for (const auto& c : communities) EXPECT_EQ(c.theme, Itemset({0}));
}

TEST(TcTreeQueryTest, RetrievedTrussesSatisfyThmFiveOne) {
  // Within one query result, a longer pattern's truss is contained in
  // every sub-pattern's truss (Thm. 5.1) — check on the tree output.
  DatabaseNetwork net = MakeRandomNetwork({.num_items = 4, .seed = 71});
  TcTree tree = TcTree::Build(net);
  auto r = QueryTcTree(tree, Itemset({0, 1, 2, 3}), 0.0);
  std::map<Itemset, const PatternTruss*> by_pattern;
  for (const auto& t : r.trusses) by_pattern[t.pattern] = &t;
  for (const auto& [p, truss] : by_pattern) {
    if (p.size() < 2) continue;
    for (const Itemset& sub : p.AllSubsetsMinusOne()) {
      auto it = by_pattern.find(sub);
      ASSERT_NE(it, by_pattern.end());  // Prop. 5.2
      EXPECT_TRUE(truss->IsSubgraphOf(*it->second));
    }
  }
}

}  // namespace
}  // namespace tcf
