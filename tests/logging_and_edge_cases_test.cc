// Coverage for the logging substrate plus assorted boundary behaviours
// that the module-level suites do not reach.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/graph_builder.h"
#include "net/sampler.h"
#include "net/theme_network.h"
#include "test_util.h"
#include "util/logging.h"
#include "util/table.h"

namespace tcf {
namespace {

// ------------------------------------------------------------ logging --

class CaptureStderr {
 public:
  CaptureStderr() { old_ = std::cerr.rdbuf(buffer_.rdbuf()); }
  ~CaptureStderr() { std::cerr.rdbuf(old_); }
  std::string str() const { return buffer_.str(); }

 private:
  std::stringstream buffer_;
  std::streambuf* old_;
};

TEST(LoggingTest, RespectsMinimumLevel) {
  const LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kWarn);
  {
    CaptureStderr capture;
    TCF_LOG(Info) << "hidden message";
    TCF_LOG(Warn) << "visible warning";
    EXPECT_EQ(capture.str().find("hidden message"), std::string::npos);
    EXPECT_NE(capture.str().find("visible warning"), std::string::npos);
  }
  SetLogLevel(old_level);
}

TEST(LoggingTest, IncludesFileTagAndLevel) {
  const LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  {
    CaptureStderr capture;
    TCF_LOG(Error) << "boom";
    EXPECT_NE(capture.str().find("[E "), std::string::npos);
    EXPECT_NE(capture.str().find("logging_and_edge_cases_test.cc"),
              std::string::npos);
  }
  SetLogLevel(old_level);
}

TEST(LoggingTest, FilteredMessageDoesNotEvaluateCheaply) {
  // The macro must not crash when filtered; streamed side effects are
  // intentionally skipped.
  const LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return 1;
  };
  TCF_LOG(Debug) << count();
  EXPECT_EQ(evaluations, 0) << "filtered log must not evaluate operands";
  SetLogLevel(old_level);
}

TEST(CheckDeathTest, AbortsWithMessage) {
  EXPECT_DEATH({ TCF_CHECK(1 == 2); }, "TCF_CHECK failed");
  EXPECT_DEATH({ TCF_CHECK_MSG(false, "context here"); }, "context here");
}

TEST(CheckDeathTest, PassingCheckIsSilent) {
  TCF_CHECK(true);
  TCF_CHECK_MSG(1 + 1 == 2, "never shown");
  SUCCEED();
}

// --------------------------------------------------------- TextTable --

TEST(TextTableTest, EmptyTableStillPrintsHeader) {
  TextTable t({"only", "header"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
  std::ostringstream csv;
  t.PrintCsv(csv);
  EXPECT_EQ(csv.str(), "only,header\n");
}

// ------------------------------------------------------------ sampler --

TEST(SamplerTest, CrossesDisconnectedComponents) {
  // Two disjoint triangles; sampling 6 edges must restart BFS from a new
  // seed after exhausting the first component.
  std::vector<std::pair<VertexId, VertexId>> edges = {
      {0, 1}, {1, 2}, {0, 2}, {10, 11}, {11, 12}, {10, 12}};
  std::vector<std::vector<std::vector<ItemId>>> tx(13);
  for (auto& db : tx) db.push_back({0});
  DatabaseNetwork net = testing::MakeNetwork(13, edges, tx);
  Rng rng(3);
  auto sub = SampleByBfs(net, 6, rng);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->num_edges(), 6u);
}

// ------------------------------------------------ theme-network edges --

TEST(ThemeNetworkTest, EmptyPatternOnAllEmptyDatabases) {
  DatabaseNetwork net = testing::MakeNetwork(3, {{0, 1}, {1, 2}},
                                             {{}, {}, {}});
  ThemeNetwork tn = InduceThemeNetwork(net, Itemset());
  EXPECT_TRUE(tn.vertices.empty());
  EXPECT_TRUE(tn.empty());
}

TEST(GraphBuilderTest, ReserveSmallerThanEndpointsIsHarmless) {
  GraphBuilder b(2);
  ASSERT_TRUE(b.AddEdge(5, 6).ok());  // grows past the reservation
  Graph g = b.Build();
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_TRUE(g.HasEdge(5, 6));
}

}  // namespace
}  // namespace tcf
