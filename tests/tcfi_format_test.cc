// TCFI mmap snapshot format: round-trip fidelity, mapped-vs-owned query
// equivalence (byte-for-byte), shard slices, and the probe helpers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/partition.h"
#include "core/tc_tree.h"
#include "core/tc_tree_io.h"
#include "core/tc_tree_query.h"
#include "core/tc_tree_snapshot.h"
#include "core/tcfi_format.h"
#include "test_util.h"

namespace tcf {
namespace {

using testing::ExpectSameTruss;
using testing::MakeFigureOneNetwork;
using testing::MakeRandomNetwork;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TcTree BuildRandomTree(uint64_t seed) {
  return TcTree::Build(MakeRandomNetwork(
      {.num_vertices = 14, .num_items = 6, .tx_per_vertex = 7, .seed = seed}));
}

std::string SerializeTcft(const TcTree& tree) {
  std::stringstream ss;
  EXPECT_TRUE(SaveTcTree(tree, ss).ok());
  return ss.str();
}

void ExpectSameResult(const TcTreeQueryResult& a, const TcTreeQueryResult& b,
                      const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(a.retrieved_nodes, b.retrieved_nodes);
  EXPECT_EQ(a.visited_nodes, b.visited_nodes);
  EXPECT_EQ(a.pruned_subtrees, b.pruned_subtrees);
  ASSERT_EQ(a.trusses.size(), b.trusses.size());
  for (size_t i = 0; i < a.trusses.size(); ++i) {
    ExpectSameTruss(a.trusses[i], b.trusses[i], "truss " + std::to_string(i));
  }
}

// Save → map → materialize → re-save must reproduce the original TCFT
// bytes exactly: nothing about the tree survives only in memory.
TEST(TcfiFormatTest, MaterializedRoundTripIsByteIdentical) {
  const TcTree tree = BuildRandomTree(21);
  const std::string path = TempPath("tcfi_roundtrip.tcfi");
  ASSERT_TRUE(SaveTcTreeBinary(tree, path).ok());
  auto mapped = MapTcTree(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  const TcTree rebuilt = MaterializeTcTree(*mapped);
  EXPECT_EQ(SerializeTcft(tree), SerializeTcft(rebuilt));
}

TEST(TcfiFormatTest, MappedMetadataMatchesTree) {
  const TcTree tree = BuildRandomTree(22);
  const std::string path = TempPath("tcfi_meta.tcfi");
  ASSERT_TRUE(SaveTcTreeBinary(tree, path).ok());
  auto mapped = MapTcTree(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_EQ(mapped->num_nodes(), tree.num_nodes());
  EXPECT_EQ(mapped->MaxAlphaOverNodes(), tree.MaxAlphaOverNodes());
  EXPECT_EQ(mapped->MaxDepth(), tree.MaxDepth());
  EXPECT_EQ(mapped->TotalIndexedEdges(), tree.TotalIndexedEdges());
  EXPECT_EQ(mapped->shard_id(), 0u);
  EXPECT_EQ(mapped->num_shards(), 1u);
  for (TcTree::NodeId id = 1; id <= tree.num_nodes(); ++id) {
    ASSERT_EQ(mapped->PatternOf(id), tree.PatternOf(id)) << "node " << id;
    ASSERT_EQ(mapped->node_max_alpha(id),
              tree.node(id).decomposition.max_alpha());
  }
}

// The acceptance bar: the mapped walk answers every query byte-for-byte
// like the owned tree, across an alpha grid and itemset shapes,
// including the counters composition equivalence depends on.
TEST(TcfiFormatTest, MappedQueriesMatchOwnedAcrossGrid) {
  const TcTree tree = BuildRandomTree(23);
  const std::string path = TempPath("tcfi_queries.tcfi");
  ASSERT_TRUE(SaveTcTreeBinary(tree, path).ok());
  auto mapped = MapTcTree(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  const std::vector<Itemset> queries = {
      Itemset({0}),          Itemset({1, 2}),       Itemset({0, 1, 2}),
      Itemset({2, 3, 4, 5}), Itemset({0, 1, 2, 3, 4, 5})};
  for (double alpha : {0.0, 0.05, 0.11, 0.2, 0.5, 1.0}) {
    for (const Itemset& q : queries) {
      ExpectSameResult(QueryTcTree(tree, q, alpha),
                       QueryTcTree(*mapped, q, alpha),
                       "alpha=" + std::to_string(alpha) +
                           " q=" + q.ToString());
    }
  }
}

TEST(TcfiFormatTest, MappedCompositionMatchesCold) {
  const TcTree tree = BuildRandomTree(24);
  const std::string path = TempPath("tcfi_compose.tcfi");
  ASSERT_TRUE(SaveTcTreeBinary(tree, path).ok());
  auto mapped = MapTcTree(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  const double alpha = 0.08;
  const Itemset q({0, 1, 2, 3});
  const Itemset c1({0, 1});
  const Itemset c2({2, 3});
  const TcTreeQueryResult r1 = QueryTcTree(*mapped, c1, alpha);
  const TcTreeQueryResult r2 = QueryTcTree(*mapped, c2, alpha);
  const std::vector<SubPatternCover> covers = {{&c1, &r1}, {&c2, &r2}};
  ExpectSameResult(QueryTcTree(tree, q, alpha),
                   ComposeTcTreeQuery(*mapped, q, alpha, covers),
                   "composed over mapped");
}

TEST(TcfiFormatTest, SnapshotDispatchesBothFlavors) {
  const TcTree tree = BuildRandomTree(25);
  const std::string path = TempPath("tcfi_snapshot.tcfi");
  ASSERT_TRUE(SaveTcTreeBinary(tree, path).ok());
  auto mapped = MapTcTree(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();

  const TcTreeSnapshot owned{TcTree(tree)};
  const TcTreeSnapshot zero_copy{std::move(*mapped)};
  EXPECT_FALSE(owned.mapped());
  EXPECT_TRUE(zero_copy.mapped());
  EXPECT_EQ(owned.num_nodes(), zero_copy.num_nodes());
  EXPECT_EQ(owned.MaxAlphaOverNodes(), zero_copy.MaxAlphaOverNodes());
  const Itemset q({0, 2, 4});
  ExpectSameResult(owned.Query(q, 0.1), zero_copy.Query(q, 0.1),
                   "snapshot query");
  EXPECT_EQ(SerializeTcft(owned.MaterializeTree()),
            SerializeTcft(zero_copy.MaterializeTree()));
}

TEST(TcfiFormatTest, RootOnlyTreeRoundTrips) {
  std::deque<TcTree::Node> nodes(1);  // just a root
  const TcTree tree = TcTree::FromNodes(std::move(nodes));
  const std::string path = TempPath("tcfi_empty.tcfi");
  ASSERT_TRUE(SaveTcTreeBinary(tree, path).ok());
  auto mapped = MapTcTree(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_EQ(mapped->num_nodes(), 0u);
  EXPECT_TRUE(QueryTcTree(*mapped, Itemset({0, 1}), 0.0).trusses.empty());
}

TEST(TcfiFormatTest, ShardSlicesCarryMetadataAndPartitionExactly) {
  const size_t kShards = 3;
  const TcTree tree = BuildRandomTree(26);
  const std::string base = TempPath("tcfi_sliced.tcfi");
  ASSERT_TRUE(SaveTcfiShardSlices(TcTree(tree), base, kShards).ok());

  // Reference partition of the same tree with the same partitioner.
  const HashShardPartitioner partitioner;
  const std::vector<TcTree> parts =
      PartitionTcTree(TcTree(tree), partitioner, kShards);

  size_t total_nodes = 0;
  for (size_t s = 0; s < kShards; ++s) {
    auto mapped = MapTcTree(TcfiSlicePath(base, s, kShards));
    ASSERT_TRUE(mapped.ok()) << mapped.status();
    EXPECT_EQ(mapped->shard_id(), s);
    EXPECT_EQ(mapped->num_shards(), kShards);
    total_nodes += mapped->num_nodes();
    EXPECT_EQ(SerializeTcft(MaterializeTcTree(*mapped)),
              SerializeTcft(parts[s]))
        << "slice " << s;
  }
  EXPECT_EQ(total_nodes, tree.num_nodes());
}

TEST(TcfiFormatTest, ProbeAndSniffHelpers) {
  const TcTree tree = BuildRandomTree(27);
  const std::string tcfi_path = TempPath("tcfi_probe.tcfi");
  const std::string tcft_path = TempPath("tcfi_probe.tcft");
  ASSERT_TRUE(SaveTcTreeBinary(tree, tcfi_path).ok());
  ASSERT_TRUE(SaveTcTreeToFile(tree, tcft_path).ok());

  EXPECT_TRUE(ProbeTcfiFile(tcfi_path).ok());
  EXPECT_TRUE(LooksLikeTcfiFile(tcfi_path));
  EXPECT_FALSE(LooksLikeTcfiFile(tcft_path));
  EXPECT_TRUE(ProbeTcfiFile(tcft_path).IsCorruption());
  EXPECT_TRUE(ProbeTcfiFile("/no/such/file.tcfi").IsIOError());

  // The writer leaves no temp droppings behind.
  std::ifstream tmp(tcfi_path + ".tmp");
  EXPECT_FALSE(tmp.is_open());
}

TEST(TcfiFormatTest, FigureOneSemanticsSurviveMapping) {
  const TcTree tree = TcTree::Build(MakeFigureOneNetwork());
  const std::string path = TempPath("tcfi_fig1.tcfi");
  ASSERT_TRUE(SaveTcTreeBinary(tree, path).ok());
  auto mapped = MapTcTree(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  // At α ∈ [0, 0.2) item 0's truss holds K4 + triangle; at 0.25 only the
  // triangle; at 0.35 nothing (see MakeFigureOneNetwork's contract).
  EXPECT_EQ(QueryTcTree(*mapped, Itemset({0}), 0.0).trusses.size(), 1u);
  EXPECT_EQ(
      QueryTcTree(*mapped, Itemset({0}), 0.25).trusses.at(0).edges.size(),
      3u);
  EXPECT_TRUE(QueryTcTree(*mapped, Itemset({0}), 0.35).trusses.empty());
}

}  // namespace
}  // namespace tcf
