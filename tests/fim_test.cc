#include "tx/fim.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace tcf {
namespace {

TransactionDb MarketBasket() {
  // The classic beer/diaper example.
  TransactionDb db;
  db.Add(Itemset({0, 1}));     // beer, diaper
  db.Add(Itemset({0, 1, 2}));  // beer, diaper, milk
  db.Add(Itemset({0, 1}));
  db.Add(Itemset({2}));
  db.Add(Itemset({0, 2}));
  return db;
}

TEST(FimTest, MinesExpectedPatterns) {
  auto out = MineFrequentItemsets(MarketBasket(), 0.5);
  // Frequencies: {0}=0.8, {1}=0.6, {2}=0.6, {0,1}=0.6, {0,2}=0.4, ...
  // Strict > 0.5 keeps {0}, {1}, {2}, {0,1}.
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].pattern, Itemset({0}));
  EXPECT_DOUBLE_EQ(out[0].frequency, 0.8);
  EXPECT_EQ(out[1].pattern, Itemset({0, 1}));
  EXPECT_DOUBLE_EQ(out[1].frequency, 0.6);
  EXPECT_EQ(out[2].pattern, Itemset({1}));
  EXPECT_EQ(out[3].pattern, Itemset({2}));
}

TEST(FimTest, ThresholdIsStrict) {
  // {0,1} has frequency exactly 0.6; epsilon = 0.6 must exclude it.
  auto out = MineFrequentItemsets(MarketBasket(), 0.6);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].pattern, Itemset({0}));
}

TEST(FimTest, EpsilonZeroFindsEverySupportedPattern) {
  auto out = MineFrequentItemsets(MarketBasket(), 0.0);
  // Supported: {0} {1} {2} {0,1} {0,2} {1,2}? {1,2} appears in t1 ({0,1,2}).
  // {0,1,2} appears once. So 7 patterns total.
  EXPECT_EQ(out.size(), 7u);
}

TEST(FimTest, MaxLengthCapsPatterns) {
  auto out = MineFrequentItemsets(MarketBasket(), 0.0, 1);
  EXPECT_EQ(out.size(), 3u);  // singletons only
  for (const auto& fp : out) EXPECT_EQ(fp.pattern.size(), 1u);

  auto out2 = MineFrequentItemsets(MarketBasket(), 0.0, 2);
  for (const auto& fp : out2) EXPECT_LE(fp.pattern.size(), 2u);
  EXPECT_EQ(out2.size(), 6u);
}

TEST(FimTest, EmptyDatabaseYieldsNothing) {
  TransactionDb db;
  EXPECT_TRUE(MineFrequentItemsets(db, 0.0).empty());
}

TEST(FimTest, EmptyTransactionsOnly) {
  TransactionDb db;
  db.Add(Itemset());
  db.Add(Itemset());
  EXPECT_TRUE(MineFrequentItemsets(db, 0.0).empty());
}

TEST(FimTest, BruteForceMatchesOnExample) {
  TransactionDb db = MarketBasket();
  for (double eps : {0.0, 0.2, 0.4, 0.59, 0.6, 0.9}) {
    auto fast = MineFrequentItemsets(db, eps);
    auto slow = MineFrequentItemsetsBruteForce(db, eps);
    ASSERT_EQ(fast.size(), slow.size()) << "eps=" << eps;
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].pattern, slow[i].pattern) << "eps=" << eps;
      EXPECT_DOUBLE_EQ(fast[i].frequency, slow[i].frequency) << "eps=" << eps;
    }
  }
}

// Property suite: Eclat == brute force on random databases over a grid of
// (seed, epsilon).
class FimPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(FimPropertyTest, EclatMatchesBruteForce) {
  const auto [seed, eps] = GetParam();
  Rng rng(seed);
  TransactionDb db;
  const size_t n_tx = 2 + rng.NextUint64(25);
  for (size_t t = 0; t < n_tx; ++t) {
    std::vector<ItemId> items;
    const size_t len = rng.NextUint64(6);
    for (size_t i = 0; i < len; ++i) {
      items.push_back(static_cast<ItemId>(rng.NextUint64(7)));
    }
    db.Add(Itemset(std::move(items)));
  }
  auto fast = MineFrequentItemsets(db, eps);
  auto slow = MineFrequentItemsetsBruteForce(db, eps);
  ASSERT_EQ(fast.size(), slow.size());
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].pattern, slow[i].pattern);
    EXPECT_DOUBLE_EQ(fast[i].frequency, slow[i].frequency);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDatabases, FimPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(0.0, 0.1, 0.3, 0.5)));

TEST(FimTest, FrequenciesAreExactProportions) {
  auto out = MineFrequentItemsets(MarketBasket(), 0.0);
  TransactionDb db = MarketBasket();
  for (const auto& fp : out) {
    EXPECT_DOUBLE_EQ(fp.frequency, db.Frequency(fp.pattern));
  }
}

}  // namespace
}  // namespace tcf
