#ifndef TCF_TESTS_TEST_UTIL_H_
#define TCF_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/mining_result.h"
#include "core/pattern_truss.h"
#include "graph/graph_builder.h"
#include "net/database_network.h"
#include "net/theme_network.h"
#include "tx/itemset.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace tcf {
namespace testing {

/// Builds a database network from explicit edges and per-vertex
/// transaction lists. `transactions[v]` is the list of transactions of
/// vertex v, each a list of item ids. Items are named "i<id>".
inline DatabaseNetwork MakeNetwork(
    size_t num_vertices, const std::vector<std::pair<VertexId, VertexId>>& edges,
    const std::vector<std::vector<std::vector<ItemId>>>& transactions) {
  GraphBuilder builder(num_vertices);
  for (const auto& [a, b] : edges) {
    EXPECT_TRUE(builder.AddEdge(a, b).ok());
  }
  std::vector<TransactionDb> dbs(num_vertices);
  ItemId max_item = 0;
  for (size_t v = 0; v < transactions.size(); ++v) {
    for (const auto& t : transactions[v]) {
      for (ItemId item : t) max_item = std::max(max_item, item);
      dbs[v].Add(Itemset(t));
    }
  }
  ItemDictionary dict;
  for (ItemId i = 0; i <= max_item; ++i) dict.GetOrAdd(StrFormat("i%u", i));
  return DatabaseNetwork(builder.Build(), std::move(dbs), std::move(dict));
}

/// Options for random test networks (small enough for the oracles).
struct RandomNetOptions {
  size_t num_vertices = 12;
  double edge_prob = 0.35;
  size_t num_items = 5;
  size_t tx_per_vertex = 6;
  size_t max_tx_len = 3;
  uint64_t seed = 1;
};

/// A random database network: G(n, p) graph, every vertex gets
/// `tx_per_vertex` transactions of 1..max_tx_len uniform items.
inline DatabaseNetwork MakeRandomNetwork(const RandomNetOptions& o) {
  Rng rng(o.seed);
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId a = 0; a < o.num_vertices; ++a) {
    for (VertexId b = a + 1; b < o.num_vertices; ++b) {
      if (rng.NextBool(o.edge_prob)) edges.emplace_back(a, b);
    }
  }
  std::vector<std::vector<std::vector<ItemId>>> tx(o.num_vertices);
  for (size_t v = 0; v < o.num_vertices; ++v) {
    for (size_t t = 0; t < o.tx_per_vertex; ++t) {
      const size_t len = 1 + rng.NextUint64(o.max_tx_len);
      std::vector<ItemId> items;
      for (size_t i = 0; i < len; ++i) {
        items.push_back(static_cast<ItemId>(rng.NextUint64(o.num_items)));
      }
      tx[v].push_back(std::move(items));
    }
  }
  return MakeNetwork(o.num_vertices, edges, tx);
}

/// Canonical edge-list shorthand.
inline std::vector<Edge> EdgeList(
    std::initializer_list<std::pair<VertexId, VertexId>> pairs) {
  std::vector<Edge> out;
  for (const auto& [a, b] : pairs) out.push_back(MakeEdge(a, b));
  std::sort(out.begin(), out.end());
  return out;
}

/// Structural equality of two trusses: same pattern, edges, vertices and
/// frequencies. Edge cohesions are compared only if both carry them.
inline void ExpectSameTruss(const PatternTruss& a, const PatternTruss& b,
                            const std::string& context = "") {
  SCOPED_TRACE(context);
  EXPECT_EQ(a.pattern, b.pattern);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.vertices, b.vertices);
  ASSERT_EQ(a.frequencies.size(), b.frequencies.size());
  for (size_t i = 0; i < a.frequencies.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.frequencies[i], b.frequencies[i]) << "vertex index " << i;
  }
  if (!a.edge_cohesions.empty() && !b.edge_cohesions.empty()) {
    EXPECT_EQ(a.edge_cohesions, b.edge_cohesions);
  }
}

/// Equality of complete mining results (order-insensitive; canonicalizes
/// both sides).
inline void ExpectSameResults(MiningResult a, MiningResult b,
                              const std::string& context = "") {
  SCOPED_TRACE(context);
  a.Canonicalize();
  b.Canonicalize();
  ASSERT_EQ(a.trusses.size(), b.trusses.size());
  for (size_t i = 0; i < a.trusses.size(); ++i) {
    ExpectSameTruss(a.trusses[i], b.trusses[i],
                    "truss " + a.trusses[i].pattern.ToString());
  }
}

/// The Figure-1-style toy: two theme communities whose validity ranges
/// differ.
///  - K4 on {0,1,2,3}, every vertex frequency 0.1 for item 0
///    (each K4 edge lies in 2 triangles → eco = 0.2);
///  - triangle {6,7,8}, frequency 0.3 (eco = 0.3);
///  - bridge 3–6 (no triangle → eco = 0).
/// At α ∈ [0, 0.2) both communities stand; at [0.2, 0.3) only the
/// triangle; at [0.3, ∞) none. Frequencies are realized with 10
/// transactions per vertex (1 or 3 of them containing item 0).
inline DatabaseNetwork MakeFigureOneNetwork() {
  std::vector<std::pair<VertexId, VertexId>> edges = {
      {0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},  // K4
      {6, 7}, {6, 8}, {7, 8},                          // triangle
      {3, 6},                                          // bridge
  };
  std::vector<std::vector<std::vector<ItemId>>> tx(9);
  auto fill = [&](VertexId v, int positives) {
    for (int t = 0; t < 10; ++t) {
      if (t < positives) tx[v].push_back({0});
      else tx[v].push_back({1});
    }
  };
  for (VertexId v : {0, 1, 2, 3}) fill(v, 1);   // f = 0.1
  for (VertexId v : {6, 7, 8}) fill(v, 3);      // f = 0.3
  fill(4, 0);                                   // isolated, f = 0
  fill(5, 0);
  return MakeNetwork(9, edges, tx);
}

}  // namespace testing
}  // namespace tcf

#endif  // TCF_TESTS_TEST_UTIL_H_
