#include "tx/itemset.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "tx/item_dictionary.h"

namespace tcf {
namespace {

TEST(ItemsetTest, ConstructionSortsAndDedups) {
  Itemset s({5, 1, 3, 1, 5});
  EXPECT_EQ(s.items(), (std::vector<ItemId>{1, 3, 5}));
  EXPECT_EQ(s.size(), 3u);
}

TEST(ItemsetTest, EmptyBehaviour) {
  Itemset e;
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.size(), 0u);
  EXPECT_FALSE(e.Contains(0));
  EXPECT_TRUE(e.IsSubsetOf(Itemset({1, 2})));
}

TEST(ItemsetTest, Single) {
  Itemset s = Itemset::Single(9);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Contains(9));
}

TEST(ItemsetTest, Contains) {
  Itemset s({2, 4, 8});
  EXPECT_TRUE(s.Contains(2));
  EXPECT_TRUE(s.Contains(8));
  EXPECT_FALSE(s.Contains(3));
}

TEST(ItemsetTest, SubsetRelation) {
  Itemset a({1, 3});
  Itemset b({1, 2, 3});
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
}

TEST(ItemsetTest, UnionWithSet) {
  EXPECT_EQ(Itemset({1, 3}).Union(Itemset({2, 3})), Itemset({1, 2, 3}));
  EXPECT_EQ(Itemset().Union(Itemset({5})), Itemset({5}));
}

TEST(ItemsetTest, UnionWithItem) {
  EXPECT_EQ(Itemset({1, 3}).Union(2), Itemset({1, 2, 3}));
  EXPECT_EQ(Itemset({1, 3}).Union(3), Itemset({1, 3}));  // already present
  EXPECT_EQ(Itemset({1, 3}).Union(9), Itemset({1, 3, 9}));
  EXPECT_EQ(Itemset().Union(0), Itemset({0}));
}

TEST(ItemsetTest, Intersect) {
  EXPECT_EQ(Itemset({1, 2, 3}).Intersect(Itemset({2, 3, 4})),
            Itemset({2, 3}));
  EXPECT_EQ(Itemset({1}).Intersect(Itemset({2})), Itemset());
}

TEST(ItemsetTest, Minus) {
  EXPECT_EQ(Itemset({1, 2, 3}).Minus(Itemset({2})), Itemset({1, 3}));
  EXPECT_EQ(Itemset({1}).Minus(Itemset({1})), Itemset());
}

TEST(ItemsetTest, AllSubsetsMinusOne) {
  auto subs = Itemset({1, 2, 3}).AllSubsetsMinusOne();
  ASSERT_EQ(subs.size(), 3u);
  EXPECT_EQ(subs[0], Itemset({2, 3}));
  EXPECT_EQ(subs[1], Itemset({1, 3}));
  EXPECT_EQ(subs[2], Itemset({1, 2}));
}

TEST(ItemsetTest, HasPrefix) {
  Itemset s({1, 2, 3});
  EXPECT_TRUE(s.HasPrefix(Itemset({1})));
  EXPECT_TRUE(s.HasPrefix(Itemset({1, 2})));
  EXPECT_TRUE(s.HasPrefix(Itemset()));
  EXPECT_FALSE(s.HasPrefix(Itemset({2})));
  EXPECT_FALSE(s.HasPrefix(Itemset({1, 2, 3, 4})));
}

TEST(ItemsetTest, BackReturnsLargest) {
  EXPECT_EQ(Itemset({4, 1, 9}).Back(), 9u);
}

TEST(ItemsetTest, LexicographicOrder) {
  EXPECT_LT(Itemset({1}), Itemset({1, 2}));
  EXPECT_LT(Itemset({1, 2}), Itemset({1, 3}));
  EXPECT_LT(Itemset({1, 9}), Itemset({2}));
  EXPECT_FALSE(Itemset({2}) < Itemset({2}));
}

TEST(ItemsetTest, ToString) {
  EXPECT_EQ(Itemset({3, 1}).ToString(), "{1, 3}");
  EXPECT_EQ(Itemset().ToString(), "{}");
}

TEST(ItemsetTest, HashConsistentWithEquality) {
  Itemset a({1, 2, 3});
  Itemset b({3, 2, 1});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  std::unordered_set<Itemset, ItemsetHash> set;
  set.insert(a);
  set.insert(b);
  EXPECT_EQ(set.size(), 1u);
  set.insert(Itemset({1, 2}));
  EXPECT_EQ(set.size(), 2u);
}

TEST(AprioriJoinTest, JoinsPrefixSharingPatterns) {
  Itemset out;
  ASSERT_TRUE(AprioriJoin(Itemset({1, 2}), Itemset({1, 3}), &out));
  EXPECT_EQ(out, Itemset({1, 2, 3}));
}

TEST(AprioriJoinTest, SingletonsAlwaysJoin) {
  Itemset out;
  ASSERT_TRUE(AprioriJoin(Itemset({1}), Itemset({4}), &out));
  EXPECT_EQ(out, Itemset({1, 4}));
}

TEST(AprioriJoinTest, RejectsDifferentPrefix) {
  Itemset out;
  EXPECT_FALSE(AprioriJoin(Itemset({1, 2}), Itemset({2, 3}), &out));
}

TEST(AprioriJoinTest, RejectsIdenticalOrDifferentLengths) {
  Itemset out;
  EXPECT_FALSE(AprioriJoin(Itemset({1, 2}), Itemset({1, 2}), &out));
  EXPECT_FALSE(AprioriJoin(Itemset({1, 2}), Itemset({1}), &out));
  EXPECT_FALSE(AprioriJoin(Itemset(), Itemset(), &out));
}

// -------------------------------------------------------- Dictionary --

TEST(ItemDictionaryTest, InternAssignsDenseIds) {
  ItemDictionary d;
  EXPECT_EQ(d.GetOrAdd("apple"), 0u);
  EXPECT_EQ(d.GetOrAdd("beer"), 1u);
  EXPECT_EQ(d.GetOrAdd("apple"), 0u);  // existing
  EXPECT_EQ(d.size(), 2u);
}

TEST(ItemDictionaryTest, NameLookup) {
  ItemDictionary d;
  d.GetOrAdd("diaper");
  EXPECT_EQ(d.Name(0), "diaper");
}

TEST(ItemDictionaryTest, FindMissingReturnsNotFound) {
  ItemDictionary d;
  d.GetOrAdd("x");
  auto found = d.Find("x");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 0u);
  EXPECT_TRUE(d.Find("y").status().IsNotFound());
}

TEST(ItemDictionaryTest, RenderItemset) {
  ItemDictionary d;
  d.GetOrAdd("beer");
  d.GetOrAdd("diaper");
  EXPECT_EQ(d.Render(Itemset({0, 1})), "{beer, diaper}");
  EXPECT_EQ(d.Render(Itemset({7})), "{#7}");  // unknown id degrades
}

}  // namespace
}  // namespace tcf
