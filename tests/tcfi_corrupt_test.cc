// Corruption property suite for the TCFI loader: every damaged file —
// bad magic, foreign endianness, bad version, flipped header or section
// bytes, truncation, out-of-bounds arena slices — must come back as a
// clean Status (never a crash), because serve/file_watcher and RELOAD
// feed the loader whatever is on disk mid-copy.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <string>

#include "core/tc_tree.h"
#include "core/tcfi_format.h"
#include "test_util.h"
#include "util/rng.h"

namespace tcf {
namespace {

using testing::MakeRandomNetwork;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.is_open()) << path;
  std::string bytes((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(f.is_open()) << path;
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// The suite's fixture: one good file, whose bytes each case mutates.
class TcfiCorruptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const TcTree tree = TcTree::Build(MakeRandomNetwork(
        {.num_vertices = 13, .num_items = 5, .tx_per_vertex = 6,
         .seed = 41}));
    path_ = TempPath("tcfi_corrupt.tcfi");
    ASSERT_TRUE(SaveTcTreeBinary(tree, path_).ok());
    good_ = ReadFileBytes(path_);
    ASSERT_GE(good_.size(), sizeof(TcfiHeader));
    std::memcpy(&header_, good_.data(), sizeof(header_));
  }

  /// Writes `bytes` over the fixture file and maps it.
  Status MapMutated(const std::string& bytes,
                    const TcfiMapOptions& options = {}) {
    WriteFileBytes(path_, bytes);
    return MapTcTree(path_, options).status();
  }

  /// Re-stamps a valid header CRC so mutations *past* the CRC check are
  /// reached (version, sections, arenas).
  static void FixHeaderCrc(std::string* bytes) {
    TcfiHeader h;
    std::memcpy(&h, bytes->data(), sizeof(h));
    h.header_crc = 0;
    h.header_crc = tcfi_internal::Crc32(&h, sizeof(h));
    std::memcpy(bytes->data(), &h, sizeof(h));
  }

  std::string path_;
  std::string good_;
  TcfiHeader header_;
};

TEST_F(TcfiCorruptTest, GoodFileMaps) {
  EXPECT_TRUE(MapMutated(good_).ok());
  EXPECT_TRUE(ProbeTcfiFile(path_).ok());
}

TEST_F(TcfiCorruptTest, BadMagic) {
  std::string bytes = good_;
  bytes[0] = 'X';
  EXPECT_TRUE(MapMutated(bytes).IsCorruption());
  EXPECT_TRUE(ProbeTcfiFile(path_).IsCorruption());
}

TEST_F(TcfiCorruptTest, ForeignEndiannessIsDistinct) {
  std::string bytes = good_;
  TcfiHeader h = header_;
  h.endian = __builtin_bswap32(kTcfiEndianMarker);
  std::memcpy(bytes.data(), &h, sizeof(h));
  const Status st = MapMutated(bytes);
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_NE(st.message().find("endian"), std::string::npos) << st;
}

TEST_F(TcfiCorruptTest, GarbageEndianMarker) {
  std::string bytes = good_;
  TcfiHeader h = header_;
  h.endian = 0xDEADBEEF;
  std::memcpy(bytes.data(), &h, sizeof(h));
  EXPECT_TRUE(MapMutated(bytes).IsCorruption());
}

TEST_F(TcfiCorruptTest, FutureVersionRejected) {
  std::string bytes = good_;
  TcfiHeader h = header_;
  h.version = kTcfiVersion + 1;
  std::memcpy(bytes.data(), &h, sizeof(h));
  FixHeaderCrc(&bytes);
  const Status st = MapMutated(bytes);
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_NE(st.message().find("version"), std::string::npos) << st;
}

TEST_F(TcfiCorruptTest, HeaderByteFlipFailsCrc) {
  std::string bytes = good_;
  TcfiHeader h = header_;
  h.num_nodes += 1;  // lie about the node count, keep the stale CRC
  std::memcpy(bytes.data(), &h, sizeof(h));
  const Status st = MapMutated(bytes);
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_NE(st.message().find("checksum"), std::string::npos) << st;
}

TEST_F(TcfiCorruptTest, TruncationAtEveryBoundary) {
  for (const size_t cut :
       {size_t{0}, size_t{3}, sizeof(TcfiHeader) / 2, sizeof(TcfiHeader) - 1,
        sizeof(TcfiHeader), good_.size() / 2, good_.size() - 1}) {
    const Status st = MapMutated(good_.substr(0, cut));
    EXPECT_TRUE(st.IsCorruption()) << "cut=" << cut << " → " << st;
    EXPECT_TRUE(ProbeTcfiFile(path_).IsCorruption()) << "cut=" << cut;
  }
}

TEST_F(TcfiCorruptTest, TrailingGarbageIsSizeMismatch) {
  const Status st = MapMutated(good_ + "extra");
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_NE(st.message().find("size mismatch"), std::string::npos) << st;
}

TEST_F(TcfiCorruptTest, SectionByteFlipFailsSectionCrc) {
  for (uint32_t s = 0; s < kTcfiNumSections; ++s) {
    const TcfiSection& sec = header_.sections[s];
    if (sec.size == 0) continue;
    std::string bytes = good_;
    bytes[sec.offset] = static_cast<char>(bytes[sec.offset] ^ 0x40);
    const Status st = MapMutated(bytes);
    EXPECT_TRUE(st.IsCorruption()) << "section " << s + 1 << " → " << st;
    EXPECT_NE(st.message().find("checksum"), std::string::npos) << st;
  }
}

TEST_F(TcfiCorruptTest, StructureScanCatchesOutOfBoundsSlice) {
  // Forge a child slice pointing past the arena, re-stamp both the
  // section CRC and the header CRC so only the structural scan can
  // object — this is the no-checksum torture case.
  std::string bytes = good_;
  TcfiHeader h = header_;
  const TcfiSection& nodes_sec = h.sections[kTcfiNodes - 1];
  TcfiNodeRec rec;
  std::memcpy(&rec, bytes.data() + nodes_sec.offset, sizeof(rec));
  rec.children_begin = ~uint64_t{0} / 2;
  std::memcpy(bytes.data() + nodes_sec.offset, &rec, sizeof(rec));
  h.sections[kTcfiNodes - 1].crc32 = tcfi_internal::Crc32(
      bytes.data() + nodes_sec.offset, nodes_sec.size);
  std::memcpy(bytes.data(), &h, sizeof(h));
  FixHeaderCrc(&bytes);
  const Status st = MapMutated(bytes);
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_NE(st.message().find("bounds"), std::string::npos) << st;
}

TEST_F(TcfiCorruptTest, MissingFileIsIOError) {
  EXPECT_TRUE(MapTcTree(TempPath("no_such.tcfi")).status().IsIOError());
}

TEST_F(TcfiCorruptTest, EveryRandomByteFlipFailsCleanly) {
  Rng rng(97);
  for (int trial = 0; trial < 200; ++trial) {
    std::string bytes = good_;
    const size_t pos = rng.NextUint64(bytes.size());
    const auto mask =
        static_cast<char>(1 + rng.NextUint64(255));  // non-zero flip
    bytes[pos] = static_cast<char>(bytes[pos] ^ mask);
    // Must never crash. A flip landing in alignment padding can load
    // fine (padding is outside every checksummed payload); anything
    // else must be caught, and a successful load must still agree on
    // the node count.
    WriteFileBytes(path_, bytes);
    const auto mutated = MapTcTree(path_);
    if (mutated.ok()) {
      EXPECT_EQ(mutated->num_nodes(), header_.num_nodes - 1)
          << "pos=" << pos;
    } else {
      EXPECT_TRUE(mutated.status().IsCorruption()) << "pos=" << pos;
    }
    WriteFileBytes(path_, good_);
  }
}

TEST_F(TcfiCorruptTest, RandomTruncationsFailCleanly) {
  Rng rng(98);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t cut = rng.NextUint64(good_.size());
    EXPECT_TRUE(MapMutated(good_.substr(0, cut)).IsCorruption())
        << "cut=" << cut;
  }
}

}  // namespace
}  // namespace tcf
