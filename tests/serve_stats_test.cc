#include "serve/serve_stats.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace tcf {
namespace {

TEST(ServeStatsTest, ReportSummarizesLatencies) {
  ServeStats stats;
  // 1..100 µs: percentiles of a known distribution.
  for (int i = 1; i <= 100; ++i) {
    stats.RecordQuery(static_cast<double>(i), /*num_trusses=*/2);
  }
  const ServeReport report = stats.Report();
  EXPECT_EQ(report.queries, 100u);
  EXPECT_EQ(report.trusses_returned, 200u);
  EXPECT_DOUBLE_EQ(report.mean_us, 50.5);
  EXPECT_NEAR(report.p50_us, 50.0, 1.0);
  EXPECT_NEAR(report.p90_us, 90.0, 1.0);
  EXPECT_NEAR(report.p99_us, 99.0, 1.0);
  EXPECT_DOUBLE_EQ(report.max_us, 100.0);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.qps, 0.0);
}

TEST(ServeStatsTest, EmptyReportIsAllZero) {
  ServeStats stats;
  const ServeReport report = stats.Report();
  EXPECT_EQ(report.queries, 0u);
  EXPECT_EQ(report.p50_us, 0.0);
  EXPECT_EQ(report.max_us, 0.0);
}

TEST(ServeStatsTest, ResetForgetsSamples) {
  ServeStats stats;
  stats.RecordQuery(10.0, 1);
  stats.Reset();
  EXPECT_EQ(stats.Report().queries, 0u);
  stats.RecordQuery(20.0, 1);
  const ServeReport report = stats.Report();
  EXPECT_EQ(report.queries, 1u);
  EXPECT_DOUBLE_EQ(report.max_us, 20.0);
}

TEST(ServeStatsTest, ConcurrentRecordingLosesNothing) {
  ServeStats stats;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&stats] {
      for (int i = 0; i < 1000; ++i) stats.RecordQuery(1.0, 1);
    });
  }
  for (auto& th : threads) th.join();
  const ServeReport report = stats.Report();
  EXPECT_EQ(report.queries, 8000u);
  EXPECT_EQ(report.trusses_returned, 8000u);
}

TEST(ServeStatsTest, ReportRendersCacheCounters) {
  ServeStats stats;
  stats.RecordQuery(5.0, 1);
  ResultCacheStats cache;
  cache.hits = 3;
  cache.misses = 1;
  const ServeReport report = stats.Report(cache);
  EXPECT_DOUBLE_EQ(report.cache.HitRate(), 0.75);

  std::ostringstream os;
  report.ToTable().Print(os);
  EXPECT_NE(os.str().find("cache hit rate"), std::string::npos);
  EXPECT_NE(os.str().find("throughput"), std::string::npos);
}

}  // namespace
}  // namespace tcf
