#include "serve/file_watcher.h"

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <string>
#include <thread>

#include "core/tc_tree.h"
#include "core/tc_tree_io.h"
#include "core/tc_tree_query.h"
#include "serve/query_service.h"
#include "test_util.h"

namespace tcf {
namespace {

using testing::MakeFigureOneNetwork;

/// Polls `pred` for ~5 s (the watcher is asynchronous by design).
template <typename Pred>
bool WaitFor(Pred pred) {
  for (int i = 0; i < 5000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

TEST(FileWatcherTest, SwapsInEachNewVersionOnWrite) {
  // A multi-item network so the depth cap actually removes nodes.
  DatabaseNetwork net = testing::MakeRandomNetwork(
      {.num_vertices = 14, .edge_prob = 0.5, .num_items = 4, .seed = 7});
  TcTree full = TcTree::Build(net);
  TcTree shallow = TcTree::Build(net, {.max_depth = 1});
  ASSERT_LT(shallow.num_nodes(), full.num_nodes());

  const std::string path = ::testing::TempDir() + "/file_watcher_swap.idx";
  ASSERT_TRUE(SaveTcTreeToFile(full, path).ok());

  QueryService service(full, net.dictionary(), {});
  FileWatcherOptions options;
  options.path = path;
  options.poll_ms = 5;
  FileWatcher watcher(service, options);
  ASSERT_TRUE(watcher.Start().ok());

  // The version present at Start() is the baseline — no spurious reload.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(watcher.reloads(), 0u);

  // A writer replaces the artifact; the watcher swaps it in and counts
  // it as a reload (same path as the wire RELOAD verb).
  ASSERT_TRUE(SaveTcTreeToFile(shallow, path).ok());
  ASSERT_TRUE(WaitFor([&] { return watcher.reloads() >= 1; }));
  ASSERT_TRUE(WaitFor([&] { return service.Report().reloads >= 1; }));

  // Served answers now come from the shallow tree: the depth-capped
  // index has no depth-2 pattern for {i0, i1}.
  const ServeQuery query{Itemset{0, 1}, 0.0};
  const auto result = service.Execute(query);
  const TcTreeQueryResult oracle = QueryTcTree(shallow, query.items, 0.0);
  ASSERT_EQ(result->trusses.size(), oracle.trusses.size());
  for (size_t i = 0; i < oracle.trusses.size(); ++i) {
    testing::ExpectSameTruss(result->trusses[i], oracle.trusses[i]);
  }

  // Roll forward again: the full tree returns.
  ASSERT_TRUE(SaveTcTreeToFile(full, path).ok());
  ASSERT_TRUE(WaitFor([&] { return watcher.reloads() >= 2; }));
  const auto back = service.Execute(query);
  const TcTreeQueryResult full_oracle = QueryTcTree(full, query.items, 0.0);
  ASSERT_EQ(back->trusses.size(), full_oracle.trusses.size());
  for (size_t i = 0; i < full_oracle.trusses.size(); ++i) {
    testing::ExpectSameTruss(back->trusses[i], full_oracle.trusses[i]);
  }

  watcher.Stop();
  watcher.Stop();  // idempotent
}

TEST(FileWatcherTest, HalfWrittenFileIsRetriedNotServed) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  const std::string path = ::testing::TempDir() + "/file_watcher_torn.idx";
  ASSERT_TRUE(SaveTcTreeToFile(tree, path).ok());

  QueryService service(tree, net.dictionary(), {});
  FileWatcherOptions options;
  options.path = path;
  options.poll_ms = 5;
  FileWatcher watcher(service, options);
  ASSERT_TRUE(watcher.Start().ok());

  // Simulate a torn write: the loader must reject it, the failure is
  // counted, and the old snapshot keeps serving.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "not an index";
  }
  ASSERT_TRUE(WaitFor([&] { return watcher.failures() >= 1; }));
  EXPECT_EQ(watcher.reloads(), 0u);
  const ServeQuery query{Itemset{0}, 0.1};
  const auto still = service.Execute(query);
  const TcTreeQueryResult oracle = QueryTcTree(tree, query.items, 0.1);
  EXPECT_EQ(still->trusses.size(), oracle.trusses.size());

  // The writer finishes (a valid file lands): the retry succeeds.
  ASSERT_TRUE(SaveTcTreeToFile(tree, path).ok());
  ASSERT_TRUE(WaitFor([&] { return watcher.reloads() >= 1; }));

  watcher.Stop();
}

TEST(FileWatcherTest, StartRejectsEmptyPathAndDoubleStart) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});

  FileWatcher empty(service, {});
  EXPECT_TRUE(empty.Start().IsInvalidArgument());

  FileWatcherOptions options;
  options.path = ::testing::TempDir() + "/file_watcher_double.idx";
  options.poll_ms = 5;
  FileWatcher watcher(service, options);
  ASSERT_TRUE(watcher.Start().ok());
  EXPECT_TRUE(watcher.Start().IsInvalidArgument());
  watcher.Stop();
}

}  // namespace
}  // namespace tcf
