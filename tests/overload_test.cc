#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "core/tc_tree.h"
#include "serve/client.h"
#include "serve/line_protocol.h"
#include "serve/query_service.h"
#include "serve/tcp_server.h"
#include "test_util.h"
#include "util/failpoint.h"
#include "util/string_util.h"

// Overload-protection behaviour of the serving stack (docs/robustness.md):
// request deadlines, per-client rate limiting, load shedding, and the
// fault-injection chaos drills. The deadline *correctness* property —
// bounded answers equal unbounded answers byte for byte — lives here too.

namespace tcf {
namespace {

using testing::MakeRandomNetwork;
using testing::RandomNetOptions;

int RawConnect(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool RawSend(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

/// Buffered line reader (see tcp_server_test.cc's RawReader).
class RawReader {
 public:
  explicit RawReader(int fd) : fd_(fd) {}

  std::string ReadLine() {
    while (true) {
      const size_t newline = buf_.find('\n', pos_);
      if (newline != std::string::npos) {
        std::string line = buf_.substr(pos_, newline - pos_);
        pos_ = newline + 1;
        return line;
      }
      buf_.erase(0, pos_);
      pos_ = 0;
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return {};
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buf_;
  size_t pos_ = 0;
};

/// Reads one complete framed response (status line + its payload lines)
/// and returns the decoded header. Fails the test on an unparseable
/// status line or a truncated payload — the "every response is clean"
/// half of the deadline property.
ResponseHeader MustReadResponse(RawReader& reader, const std::string& what) {
  const std::string status_line = reader.ReadLine();
  auto header = ParseResponseHeader(status_line);
  EXPECT_TRUE(header.ok()) << what << ": bad status line: " << status_line;
  if (!header.ok()) return ResponseHeader{};
  for (size_t i = 0; i < header->payload_lines; ++i) {
    // An empty line here would mean EOF mid-payload (payload lines are
    // never empty in this protocol): a truncated response.
    EXPECT_FALSE(reader.ReadLine().empty())
        << what << ": truncated payload at line " << i;
  }
  return *header;
}

/// A network big enough that deadline checks actually interleave with
/// work, small enough to build in milliseconds.
DatabaseNetwork MakeServingNetwork() {
  RandomNetOptions o;
  o.num_vertices = 24;
  o.edge_prob = 0.4;
  o.num_items = 8;
  o.tx_per_vertex = 8;
  o.seed = 11;
  return MakeRandomNetwork(o);
}

std::vector<std::string> ServingWorkload() {
  return {
      "0.02;i0,i1,i2,i3,i4,i5", "0.05;i0,i1,i2",    "0.02;i2,i3,i4,i6,i7",
      "0.1;i1,i5",              "0.02;i0,i3,i6,i7", "0.05;i0,i1,i2,i3,i4",
  };
}

// ---------------------------------------------------------- deadlines

// The correctness half of the deadline property: a server with a
// generous default deadline answers byte-identically to one with no
// deadline at all.
TEST(OverloadTest, GenerousDeadlineAnswersMatchUnboundedServer) {
  DatabaseNetwork net = MakeServingNetwork();
  TcTree tree = TcTree::Build(net);

  QueryService plain_service(tree, net.dictionary(), {});
  TcpServer plain_server(plain_service, {});
  ASSERT_TRUE(plain_server.Start().ok());

  QueryService bounded_service(tree, net.dictionary(), {});
  TcpServerOptions bounded_options;
  bounded_options.default_deadline_ms = 60000;
  TcpServer bounded_server(bounded_service, bounded_options);
  ASSERT_TRUE(bounded_server.Start().ok());

  const int plain_fd = RawConnect(plain_server.port());
  const int bounded_fd = RawConnect(bounded_server.port());
  ASSERT_GE(plain_fd, 0);
  ASSERT_GE(bounded_fd, 0);
  RawReader plain_reader(plain_fd), bounded_reader(bounded_fd);

  for (const std::string& line : ServingWorkload()) {
    ASSERT_TRUE(RawSend(plain_fd, line + "\n"));
    ASSERT_TRUE(RawSend(bounded_fd, line + "\n"));
    // Also exercise the per-request prefix on the unbounded server: it
    // must change nothing but the budget.
    ASSERT_TRUE(RawSend(plain_fd, "DEADLINE 60000 " + line + "\n"));

    const std::string plain_status = plain_reader.ReadLine();
    const std::string bounded_status = bounded_reader.ReadLine();
    EXPECT_EQ(plain_status, bounded_status) << line;
    auto header = ParseResponseHeader(plain_status);
    ASSERT_TRUE(header.ok()) << plain_status;
    ASSERT_TRUE(header->ok) << plain_status;
    std::vector<std::string> plain_payload;
    for (size_t i = 0; i < header->payload_lines; ++i) {
      plain_payload.push_back(plain_reader.ReadLine());
      EXPECT_EQ(bounded_reader.ReadLine(), plain_payload.back())
          << line << " payload line " << i;
    }
    // The prefixed reply off the unbounded server, byte for byte.
    EXPECT_EQ(plain_reader.ReadLine(), plain_status);
    for (const std::string& expected : plain_payload) {
      EXPECT_EQ(plain_reader.ReadLine(), expected);
    }
  }

  ::close(plain_fd);
  ::close(bounded_fd);
  plain_server.Shutdown();
  bounded_server.Shutdown();
}

// The liveness half: under a 1 ms budget every response is a complete,
// parseable frame — TRUSSES when the walk beat the clock, ERR
// DeadlineExceeded when it did not. Never a hang, never a truncated
// payload, and the connection stays usable afterwards.
TEST(OverloadTest, TinyDeadlineAlwaysAnswersCleanly) {
  DatabaseNetwork net = MakeServingNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServerOptions options;
  options.default_deadline_ms = 1;
  TcpServer server(service, options);
  ASSERT_TRUE(server.Start().ok());

  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  RawReader reader(fd);

  size_t expired = 0;
  for (int round = 0; round < 10; ++round) {
    for (const std::string& line : ServingWorkload()) {
      ASSERT_TRUE(RawSend(fd, line + "\n"));
      const ResponseHeader header = MustReadResponse(reader, line);
      if (header.ok) {
        EXPECT_EQ(header.kind, "TRUSSES") << line;
      } else {
        EXPECT_EQ(header.code, Status::Code::kDeadlineExceeded)
            << line << ": " << header.message;
        ++expired;
      }
    }
  }
  if (expired > 0) {
    EXPECT_GE(service.Report().deadline_exceeded, expired);
  }

  // The connection is not poisoned: PING still answers.
  ASSERT_TRUE(RawSend(fd, "PING\n"));
  EXPECT_EQ(reader.ReadLine(), "TCF1 OK PONG 0");
  ::close(fd);
  server.Shutdown();
}

TEST(OverloadTest, DeadlinePrefixParsesAndBadFormsAreRejected) {
  DatabaseNetwork net = MakeServingNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServer server(service, {});
  ASSERT_TRUE(server.Start().ok());

  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  RawReader reader(fd);

  ASSERT_TRUE(RawSend(fd, "DEADLINE 60000 PING\n"));
  EXPECT_EQ(reader.ReadLine(), "TCF1 OK PONG 0");

  // A zero or malformed budget is a parse error, answered cleanly.
  for (const std::string bad :
       {"DEADLINE 0 PING", "DEADLINE x PING", "DEADLINE 5"}) {
    ASSERT_TRUE(RawSend(fd, bad + "\n"));
    const ResponseHeader header = MustReadResponse(reader, bad);
    EXPECT_FALSE(header.ok) << bad;
  }

  ::close(fd);
  server.Shutdown();
}

// Slots of a BATCH inherit the batch header's deadline: with a generous
// prefixed budget all slots answer normally in order.
TEST(OverloadTest, BatchSlotsInheritTheBatchDeadline) {
  DatabaseNetwork net = MakeServingNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServer server(service, {});
  ASSERT_TRUE(server.Start().ok());

  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  RawReader reader(fd);

  const std::vector<std::string> lines = ServingWorkload();
  std::string wire = StrFormat("DEADLINE 60000 BATCH %zu\n", lines.size());
  for (const std::string& line : lines) wire += line + "\n";
  ASSERT_TRUE(RawSend(fd, wire));
  for (const std::string& line : lines) {
    const ResponseHeader header = MustReadResponse(reader, line);
    EXPECT_TRUE(header.ok) << line << ": " << header.message;
    EXPECT_EQ(header.kind, "TRUSSES");
  }

  ::close(fd);
  server.Shutdown();
}

// ------------------------------------------------------- rate limiting

TEST(OverloadTest, FloodingClientIsRateLimitedWithRetryHint) {
  DatabaseNetwork net = MakeServingNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServerOptions options;
  options.rate_limit_qps = 0.5;  // one token every 2 s
  options.rate_limit_burst = 2;
  TcpServer server(service, options);
  ASSERT_TRUE(server.Start().ok());

  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  RawReader reader(fd);

  size_t ok = 0, limited = 0;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(RawSend(fd, "0.1;i0\n"));
    const ResponseHeader header = MustReadResponse(reader, "flood query");
    if (header.ok) {
      ++ok;
    } else {
      EXPECT_EQ(header.code, Status::Code::kRateLimited) << header.message;
      EXPECT_NE(header.message.find("retry in"), std::string::npos)
          << header.message;
      ++limited;
    }
  }
  EXPECT_EQ(ok, 2u);  // exactly the burst
  EXPECT_EQ(limited, 8u);

  // Health checks are exempt: PING and STATS answer even over budget,
  // and the STATS counters show the refusals.
  ASSERT_TRUE(RawSend(fd, "PING\n"));
  EXPECT_EQ(reader.ReadLine(), "TCF1 OK PONG 0");
  ::close(fd);

  // The budget is keyed by peer address, not connection: a reconnect
  // does not refill the bucket.
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto reply = (*client)->Query("0.1;i0");
  EXPECT_FALSE(reply.ok());
  EXPECT_TRUE(reply.status().IsRateLimited()) << reply.status();

  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  bool saw_limited = false, saw_clients = false;
  for (const auto& [key, value] : *stats) {
    if (key == "rate_limited") {
      saw_limited = true;
      EXPECT_EQ(value, "9");
    }
    if (key == "clients_tracked") {
      saw_clients = true;
      EXPECT_EQ(value, "1");  // both connections share 127.0.0.1
    }
  }
  EXPECT_TRUE(saw_limited);
  EXPECT_TRUE(saw_clients);
  server.Shutdown();
}

TEST(OverloadTest, BatchCostsItsLineCountSoBatchingCannotLaunderAFlood) {
  DatabaseNetwork net = MakeServingNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServerOptions options;
  options.rate_limit_qps = 0.5;
  options.rate_limit_burst = 3;
  TcpServer server(service, options);
  ASSERT_TRUE(server.Start().ok());

  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  RawReader reader(fd);

  // 5 lines > 3 tokens: the whole batch is refused with ONE error frame
  // (the body was consumed, the slots never ran).
  ASSERT_TRUE(RawSend(fd, "BATCH 5\n0.1;i0\n0.1;i1\n0.1;i2\n0.1;i3\n0.1;i4\n"));
  const ResponseHeader refused = MustReadResponse(reader, "big batch");
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.code, Status::Code::kRateLimited);

  // A denial spends no tokens: a batch within the burst still fits.
  ASSERT_TRUE(RawSend(fd, "BATCH 2\n0.1;i0\n0.1;i1\n"));
  for (int slot = 0; slot < 2; ++slot) {
    const ResponseHeader header = MustReadResponse(reader, "small batch");
    EXPECT_TRUE(header.ok) << header.message;
  }

  ::close(fd);
  server.Shutdown();
}

// ------------------------------------------------------- load shedding

TEST(OverloadTest, QueueDepthShedsColdWalksButServesCacheHits) {
  DatabaseNetwork net = MakeServingNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServerOptions options;
  options.num_threads = 1;  // one worker: pipelined units pile up
  options.shed_watermark = 2;
  TcpServer server(service, options);
  ASSERT_TRUE(server.Start().ok());

  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  RawReader reader(fd);

  // Warm the cache while the server is idle.
  const std::string warm = "0.05;i0,i1,i2";
  ASSERT_TRUE(RawSend(fd, warm + "\n"));
  EXPECT_TRUE(MustReadResponse(reader, "warm").ok);

  // One write carries 24 pipelined queries: the loop frames all of them
  // before the single worker runs the first, so every unit but the tail
  // executes with the pending-unit count far above the watermark. The
  // cached query keeps answering (degraded service, not an outage);
  // cold walks shed with a clean ERR RateLimited.
  std::string wire;
  std::vector<std::string> sent;
  for (int i = 0; i < 12; ++i) {
    sent.push_back(warm);                       // exact cache hit
    sent.push_back("0.02;i1,i2,i3,i4,i5,i6");   // large cold walk
  }
  for (const std::string& line : sent) wire += line + "\n";
  ASSERT_TRUE(RawSend(fd, wire));

  size_t hits = 0, shed = 0, cold_ok = 0;
  for (const std::string& line : sent) {
    const ResponseHeader header = MustReadResponse(reader, line);
    if (header.ok) {
      if (line == warm) {
        ++hits;
      } else {
        ++cold_ok;
      }
    } else {
      EXPECT_EQ(header.code, Status::Code::kRateLimited) << header.message;
      EXPECT_NE(header.message.find("overloaded"), std::string::npos)
          << header.message;
      ++shed;
    }
  }
  // Every cached repeat answered; at least some cold walks were shed
  // (the tail of the pipeline may run below the watermark and succeed).
  EXPECT_EQ(hits, 12u);
  EXPECT_GT(shed, 0u) << "cold_ok=" << cold_ok;
  EXPECT_GE(service.Report().shed, shed);

  // Pressure gone, the same cold query now walks fine.
  ASSERT_TRUE(RawSend(fd, "0.02;i1,i2,i3,i4,i5,i6\n"));
  EXPECT_TRUE(MustReadResponse(reader, "post-pressure").ok);

  ::close(fd);
  server.Shutdown();
}

// ------------------------------------------------------- chaos drills

// Every fault the harness can inject must surface as a clean one-line
// ERR (or an intact retried write), never a wedged server. Runs only
// under TCF_FAILPOINTS=1 — the CI chaos leg sets it.
TEST(OverloadTest, ChaosFaultsAlwaysYieldCleanResponses) {
  if (!FailpointsArmed()) GTEST_SKIP() << "set TCF_FAILPOINTS=1 to run";
  ResetFailpoints();

  DatabaseNetwork net = MakeServingNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServer server(service, {});
  ASSERT_TRUE(server.Start().ok());

  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  RawReader reader(fd);

  // Index loads fail: RELOAD answers ERR IOError and keeps serving the
  // old snapshot.
  ASSERT_TRUE(ConfigureFailpoint("reload.load", "always").ok());
  ASSERT_TRUE(RawSend(fd, "RELOAD /tmp/nonexistent.idx\n"));
  ResponseHeader header = MustReadResponse(reader, "RELOAD under fault");
  EXPECT_FALSE(header.ok);
  EXPECT_EQ(header.code, Status::Code::kIOError);
  EXPECT_NE(header.message.find("injected fault"), std::string::npos);

  // Update application fails: ERR Internal, index untouched.
  ASSERT_TRUE(ConfigureFailpoint("update.apply", "always").ok());
  ASSERT_TRUE(RawSend(fd, "UPDATE 1\nedge 0 1\n"));
  header = MustReadResponse(reader, "UPDATE under fault");
  EXPECT_FALSE(header.ok);

  // Walks hit an instantly-expired deadline: ERR DeadlineExceeded on a
  // query that would otherwise answer.
  ASSERT_TRUE(ConfigureFailpoint("walk.deadline", "always").ok());
  ASSERT_TRUE(RawSend(fd, "0.02;i0,i1,i2,i3\n"));
  header = MustReadResponse(reader, "query under walk fault");
  EXPECT_FALSE(header.ok);
  EXPECT_EQ(header.code, Status::Code::kDeadlineExceeded);
  EXPECT_GT(FailpointEvaluations("walk.deadline"), 0u);
  ASSERT_TRUE(ConfigureFailpoint("walk.deadline", "off").ok());

  // Socket writes stall with EAGAIN 30% of the time: responses must
  // still arrive complete and in order (the loop retries the flush).
  ASSERT_TRUE(ConfigureFailpoint("net.write.eagain", "prob:0.3").ok());
  for (int round = 0; round < 20; ++round) {
    for (const std::string& line : ServingWorkload()) {
      ASSERT_TRUE(RawSend(fd, line + "\n"));
      header = MustReadResponse(reader, line);
      EXPECT_TRUE(header.ok) << line << ": " << header.message;
      EXPECT_EQ(header.kind, "TRUSSES");
    }
  }
  EXPECT_GT(FailpointEvaluations("net.write.eagain"), 0u);

  // Faults cleared, the server is fully healthy — not wedged, not
  // leaking state from the drills.
  ResetFailpoints();
  ASSERT_TRUE(RawSend(fd, "PING\n"));
  EXPECT_EQ(reader.ReadLine(), "TCF1 OK PONG 0");
  ASSERT_TRUE(RawSend(fd, "0.05;i0,i1\n"));
  EXPECT_TRUE(MustReadResponse(reader, "post-chaos query").ok);

  ::close(fd);
  server.Shutdown();
  ResetFailpoints();
}

}  // namespace
}  // namespace tcf
