// Reproduces Table 3: TC-Tree indexing performance — Indexing Time, peak
// Memory and #Nodes (= number of non-empty maximal pattern trusses) on
// the four datasets.
//
// Paper values (full scale, 4 threads): BK 179 s / 0.3 GB / 18,581;
// GW 1,594 s / 2.6 GB / 11.7M; AMINER 41,068 s / 28.3 GB / 152M;
// SYN 35,836 s / 26.6 GB / 133M.
//
// Shape to check: node counts spread over orders of magnitude across the
// datasets, memory tracks indexed edges, build time tracks node count.
#include <iostream>
#include <string>

#include "bench_common.h"
#include "bench_json.h"
#include "core/tc_tree.h"
#include "util/memory.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace tcf;

namespace {

// A generous node budget keeps dense configurations from exhausting the
// machine (the paper used 32 GB for its 152M-node AMINER tree); a
// truncated build is flagged in the output.
constexpr size_t kNodeBudget = 3000000;

void IndexOne(const char* name, const DatabaseNetwork& net, bool csv,
              TextTable& table, bench::JsonWriter* json) {
  const uint64_t rss_before = CurrentRssBytes();
  WallTimer t;
  TcTree tree = TcTree::Build(net, {.num_threads = HardwareThreads(),
                                    .max_nodes = kNodeBudget});
  const double secs = t.Seconds();
  const uint64_t rss_after = CurrentRssBytes();
  (void)csv;
  double mem_scaled = 0;
  const char* unit = ByteUnits(tree.MemoryBytes(), &mem_scaled);
  std::string nodes = TextTable::Num(static_cast<uint64_t>(tree.num_nodes()));
  if (tree.build_stats().truncated) nodes += " (budget hit)";
  table.AddRow(
      {name, TextTable::Num(secs, 2),
       TextTable::Num(mem_scaled, 2) + std::string(" ") + unit, nodes,
       TextTable::Num(tree.TotalIndexedEdges()),
       TextTable::Num(static_cast<uint64_t>(tree.MaxDepth())),
       TextTable::Num(rss_after > rss_before ? rss_after - rss_before : 0)});
  if (json != nullptr) {
    // Node and edge counts are deterministic at a fixed --scale (the
    // parallel build commits in order), so bench_diff.py holds them to
    // exact equality; seconds and bytes diff with tolerance.
    const std::string p = "table3." + bench::KeySlug(name) + ".";
    json->Add(p + "build_seconds", secs);
    json->Add(p + "nodes", static_cast<uint64_t>(tree.num_nodes()));
    json->Add(p + "indexed_edges", tree.TotalIndexedEdges());
    json->Add(p + "memory_bytes", static_cast<uint64_t>(tree.MemoryBytes()));
  }
}

/// Builds the same network at 1, 2, 4 and 8 threads (plus the hardware
/// count when it exceeds 8) and reports wall time and speedup vs the
/// 1-thread build. Every layer of the build is parallel with an ordered
/// commit, so the node count column must not move across rows — the
/// sweep doubles as a determinism smoke check.
void ThreadSweep(const char* name, const DatabaseNetwork& net, bool csv,
                 std::ostream& os, bench::JsonWriter* json) {
  TextTable sweep({"dataset", "threads", "build time (s)", "speedup",
                   "#Nodes"});
  double t1 = 0;
  // Always sweep 1..8 (the acceptance grid, even when oversubscribed on
  // a smaller box — the ordered commit must not cost throughput there),
  // plus the full hardware width when it exceeds 8.
  std::vector<size_t> counts = {1, 2, 4, 8};
  if (HardwareThreads() > 8) counts.push_back(HardwareThreads());
  for (size_t t : counts) {
    WallTimer timer;
    TcTree tree =
        TcTree::Build(net, {.num_threads = t, .max_nodes = kNodeBudget});
    const double secs = timer.Seconds();
    if (t == 1) t1 = secs;
    sweep.AddRow({name, TextTable::Num(static_cast<uint64_t>(t)),
                  TextTable::Num(secs, 2),
                  TextTable::Num(secs > 0 ? t1 / secs : 0.0, 2),
                  TextTable::Num(static_cast<uint64_t>(tree.num_nodes()))});
    if (json != nullptr && t == 8) {
      const std::string p = "table3.sweep." + bench::KeySlug(name) + ".";
      json->Add(p + "speedup_8t", secs > 0 ? t1 / secs : 0.0);
      json->Add(p + "nodes", static_cast<uint64_t>(tree.num_nodes()));
    }
  }
  if (csv) sweep.PrintCsv(os);
  else sweep.Print(os);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ParseScale(argc, argv);
  const bool csv = bench::ParseCsvFlag(argc, argv);
  const std::string json_path = bench::ParseJsonPath(argc, argv);
  bench::JsonWriter json;
  bench::JsonWriter* jw = json_path.empty() ? nullptr : &json;
  bench::PrintHeader("Table 3", "TC-Tree indexing performance", scale);

  // Build-parallelism sweep (every layer expands in parallel since PR 5).
  // It runs *before* the big dataset builds: a multi-million-node build
  // leaves glibc arenas with free lists large enough to slow later
  // single-threaded allocation by an order of magnitude, which would
  // corrupt the sweep's 1-thread baseline.
  std::printf("thread sweep (parallel TC-Tree build):\n");
  {
    DatabaseNetwork bk = bench::MakeBkLike(scale);
    ThreadSweep("BK-like", bk, csv, std::cout, jw);
  }
  std::printf("\n");

  TextTable table({"dataset", "Indexing Time (s)", "Index Memory", "#Nodes",
                   "indexed edges", "max depth", "rss delta (B)"});
  {
    DatabaseNetwork bk = bench::MakeBkLike(scale);
    IndexOne("BK-like", bk, csv, table, jw);
  }
  {
    DatabaseNetwork gw = bench::MakeGwLike(scale);
    IndexOne("GW-like", gw, csv, table, jw);
  }
  {
    CoauthorNetwork am = bench::MakeAminerLike(scale);
    IndexOne("AMINER-like", am.network, csv, table, jw);
  }
  {
    DatabaseNetwork syn = bench::MakeSynLike(scale);
    IndexOne("SYN", syn, csv, table, jw);
  }

  if (csv) table.PrintCsv(std::cout);
  else table.Print(std::cout);

  if (jw != nullptr) {
    json.Add("scale", scale);
    if (!json.WriteToFile(json_path)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }

  std::printf("\npeak RSS overall: ");
  double v = 0;
  const char* u = ByteUnits(PeakRssBytes(), &v);
  std::printf("%.2f %s\n", v, u);
  std::printf(
      "Shape checks vs. paper Table 3: every TC-Tree node stores one\n"
      "maximal pattern truss; memory tracks indexed edges; the node count\n"
      "varies across datasets by orders of magnitude.\n");
  return 0;
}
