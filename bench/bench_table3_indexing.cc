// Reproduces Table 3: TC-Tree indexing performance — Indexing Time, peak
// Memory and #Nodes (= number of non-empty maximal pattern trusses) on
// the four datasets.
//
// Paper values (full scale, 4 threads): BK 179 s / 0.3 GB / 18,581;
// GW 1,594 s / 2.6 GB / 11.7M; AMINER 41,068 s / 28.3 GB / 152M;
// SYN 35,836 s / 26.6 GB / 133M.
//
// Shape to check: node counts spread over orders of magnitude across the
// datasets, memory tracks indexed edges, build time tracks node count.
#include <iostream>

#include "bench_common.h"
#include "core/tc_tree.h"
#include "util/memory.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace tcf;

namespace {

// A generous node budget keeps dense configurations from exhausting the
// machine (the paper used 32 GB for its 152M-node AMINER tree); a
// truncated build is flagged in the output.
constexpr size_t kNodeBudget = 3000000;

void IndexOne(const char* name, const DatabaseNetwork& net, bool csv,
              TextTable& table) {
  const uint64_t rss_before = CurrentRssBytes();
  WallTimer t;
  TcTree tree = TcTree::Build(net, {.num_threads = HardwareThreads(),
                                    .max_nodes = kNodeBudget});
  const double secs = t.Seconds();
  const uint64_t rss_after = CurrentRssBytes();
  (void)csv;
  double mem_scaled = 0;
  const char* unit = ByteUnits(tree.MemoryBytes(), &mem_scaled);
  std::string nodes = TextTable::Num(static_cast<uint64_t>(tree.num_nodes()));
  if (tree.build_stats().truncated) nodes += " (budget hit)";
  table.AddRow(
      {name, TextTable::Num(secs, 2),
       TextTable::Num(mem_scaled, 2) + std::string(" ") + unit, nodes,
       TextTable::Num(tree.TotalIndexedEdges()),
       TextTable::Num(static_cast<uint64_t>(tree.MaxDepth())),
       TextTable::Num(rss_after > rss_before ? rss_after - rss_before : 0)});
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ParseScale(argc, argv);
  const bool csv = bench::ParseCsvFlag(argc, argv);
  bench::PrintHeader("Table 3", "TC-Tree indexing performance", scale);

  TextTable table({"dataset", "Indexing Time (s)", "Index Memory", "#Nodes",
                   "indexed edges", "max depth", "rss delta (B)"});
  {
    DatabaseNetwork bk = bench::MakeBkLike(scale);
    IndexOne("BK-like", bk, csv, table);
  }
  {
    DatabaseNetwork gw = bench::MakeGwLike(scale);
    IndexOne("GW-like", gw, csv, table);
  }
  {
    CoauthorNetwork am = bench::MakeAminerLike(scale);
    IndexOne("AMINER-like", am.network, csv, table);
  }
  {
    DatabaseNetwork syn = bench::MakeSynLike(scale);
    IndexOne("SYN", syn, csv, table);
  }

  if (csv) table.PrintCsv(std::cout);
  else table.Print(std::cout);

  std::printf("\npeak RSS overall: ");
  double v = 0;
  const char* u = ByteUnits(PeakRssBytes(), &v);
  std::printf("%.2f %s\n", v, u);
  std::printf(
      "Shape checks vs. paper Table 3: every TC-Tree node stores one\n"
      "maximal pattern truss; memory tracks indexed edges; the node count\n"
      "varies across datasets by orders of magnitude.\n");
  return 0;
}
