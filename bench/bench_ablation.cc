// Ablations of the design decisions called out in DESIGN.md §4:
//  (1) miner pruning stack: TCS vs TCFA vs TCFI at alpha=0 (what each
//      pruning layer buys);
//  (2) frequency engine: vertical tid-list intersection vs transaction
//      scan;
//  (3) decomposition: incremental peeling with a lazy min-heap vs
//      recomputing MPTD from scratch per level;
//  (4) TC-Tree layer-1 parallelism: thread sweep.
#include <iostream>

#include "bench_common.h"
#include "core/decomposition.h"
#include "core/mptd.h"
#include "core/tc_tree.h"
#include "core/tcfa.h"
#include "core/tcfi.h"
#include "core/tcs.h"
#include "core/union_baseline.h"
#include "net/sampler.h"
#include "net/theme_network.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

using namespace tcf;

namespace {

// Naive decomposition: one full MPTD per level, recomputed from scratch.
// Produces identical levels; exists only to price the incremental design.
std::vector<DecompositionLevel> NaiveDecompose(const ThemeNetwork& tn) {
  std::vector<DecompositionLevel> levels;
  PatternTruss current = Mptd(tn, 0.0);
  while (!current.empty()) {
    const CohesionValue beta = current.MinEdgeCohesion();
    PatternTruss next = MptdQ(tn, beta);
    DecompositionLevel level;
    level.alpha = beta;
    // Removed = current \ next.
    for (const Edge& e : current.edges) {
      if (!next.ContainsEdge(e)) level.removed.push_back(e);
    }
    levels.push_back(std::move(level));
    current = std::move(next);
  }
  return levels;
}

void AblateMiners(const DatabaseNetwork& net, bool csv) {
  std::printf("\n--- (1) pruning stack at alpha=0 ---\n");
  TextTable table({"method", "time(s)", "NP", "mptd calls",
                   "pruned by intersection"});
  {
    WallTimer t;
    MiningResult r = RunTcs(net, {.alpha = 0.0, .epsilon = 0.1});
    table.AddRow({"TCS(eps=0.1, lossy)", TextTable::Num(t.Seconds(), 3),
                  TextTable::Num(r.NumPatterns()),
                  TextTable::Num(r.counters.mptd_calls), "0"});
  }
  {
    WallTimer t;
    MiningResult r = RunTcfa(net, {.alpha = 0.0});
    table.AddRow({"TCFA (apriori prune)", TextTable::Num(t.Seconds(), 3),
                  TextTable::Num(r.NumPatterns()),
                  TextTable::Num(r.counters.mptd_calls), "0"});
  }
  {
    WallTimer t;
    MiningResult r = RunTcfi(net, {.alpha = 0.0});
    table.AddRow({"TCFI (+intersection)", TextTable::Num(t.Seconds(), 3),
                  TextTable::Num(r.NumPatterns()),
                  TextTable::Num(r.counters.mptd_calls),
                  TextTable::Num(r.counters.pruned_by_intersection)});
  }
  if (csv) table.PrintCsv(std::cout);
  else table.Print(std::cout);
}

void AblateFrequencyEngine(const DatabaseNetwork& net, bool csv) {
  std::printf("\n--- (2) frequency engine: tid-lists vs scan ---\n");
  // Probe random 2-item patterns across all vertices.
  Rng rng(5);
  std::vector<Itemset> probes;
  const auto items = net.ActiveItems();
  for (int i = 0; i < 200 && items.size() >= 2; ++i) {
    ItemId a = items[rng.NextUint64(items.size())];
    ItemId b = items[rng.NextUint64(items.size())];
    if (a != b) probes.push_back(Itemset({a, b}));
  }
  TextTable table({"engine", "time(s)", "queries"});
  uint64_t queries = 0;
  {
    WallTimer t;
    double sink = 0;
    for (const Itemset& p : probes) {
      for (VertexId v = 0; v < net.num_vertices(); ++v) {
        sink += net.Frequency(v, p);  // vertical index
        ++queries;
      }
    }
    table.AddRow({"vertical tid-lists", TextTable::Num(t.Seconds(), 3),
                  TextTable::Num(queries)});
    if (sink < -1) std::printf("?");  // defeat dead-code elimination
  }
  {
    WallTimer t;
    double sink = 0;
    for (const Itemset& p : probes) {
      for (VertexId v = 0; v < net.num_vertices(); ++v) {
        sink += net.db(v).Frequency(p);  // full scan
      }
    }
    table.AddRow({"transaction scan", TextTable::Num(t.Seconds(), 3),
                  TextTable::Num(queries)});
    if (sink < -1) std::printf("?");
  }
  if (csv) table.PrintCsv(std::cout);
  else table.Print(std::cout);
}

void AblateDecomposition(const DatabaseNetwork& net, bool csv) {
  std::printf("\n--- (3) decomposition: incremental vs per-level MPTD ---\n");
  TextTable table({"strategy", "time(s)", "themes", "levels"});
  const auto items = net.ActiveItems();
  {
    WallTimer t;
    size_t levels = 0;
    for (ItemId item : items) {
      ThemeNetwork tn = InduceThemeNetwork(net, Itemset::Single(item));
      levels += TrussDecomposition::FromThemeNetwork(tn).levels().size();
    }
    table.AddRow({"incremental + lazy heap", TextTable::Num(t.Seconds(), 3),
                  TextTable::Num(static_cast<uint64_t>(items.size())),
                  TextTable::Num(static_cast<uint64_t>(levels))});
  }
  {
    WallTimer t;
    size_t levels = 0;
    for (ItemId item : items) {
      ThemeNetwork tn = InduceThemeNetwork(net, Itemset::Single(item));
      levels += NaiveDecompose(tn).size();
    }
    table.AddRow({"per-level MPTD rerun", TextTable::Num(t.Seconds(), 3),
                  TextTable::Num(static_cast<uint64_t>(items.size())),
                  TextTable::Num(static_cast<uint64_t>(levels))});
  }
  if (csv) table.PrintCsv(std::cout);
  else table.Print(std::cout);
}

void AblateThreads(const DatabaseNetwork& net, bool csv) {
  std::printf("\n--- (4) TC-Tree layer-1 thread sweep ---\n");
  TextTable table({"threads", "build time(s)", "#nodes"});
  for (size_t threads : {1, 2, 4}) {
    WallTimer t;
    TcTree tree = TcTree::Build(net, {.num_threads = threads});
    table.AddRow({TextTable::Num(static_cast<uint64_t>(threads)),
                  TextTable::Num(t.Seconds(), 3),
                  TextTable::Num(static_cast<uint64_t>(tree.num_nodes()))});
  }
  if (csv) table.PrintCsv(std::cout);
  else table.Print(std::cout);
}

void AblateUnionBaseline(const DatabaseNetwork& net, bool csv) {
  std::printf(
      "\n--- (5) semantics: attribute-union strawman vs theme trusses ---\n");
  // The §1 argument quantified: collapsing databases into attribute sets
  // fabricates patterns (no co-occurrence check) and inflates
  // communities (no frequency signal).
  TextTable table({"method", "time(s)", "NP", "NE"});
  {
    WallTimer t;
    MiningResult r = RunUnionBaseline(net, {.k = 3,
                                            .max_pattern_length = 3});
    table.AddRow({"union baseline (k=3)", TextTable::Num(t.Seconds(), 3),
                  TextTable::Num(r.NumPatterns()),
                  TextTable::Num(r.NumEdges())});
  }
  {
    WallTimer t;
    MiningResult r = RunTcfi(net, {.alpha = 0.0, .max_pattern_length = 3});
    table.AddRow({"TCFI (alpha=0)", TextTable::Num(t.Seconds(), 3),
                  TextTable::Num(r.NumPatterns()),
                  TextTable::Num(r.NumEdges())});
  }
  {
    WallTimer t;
    MiningResult r = RunTcfi(net, {.alpha = 0.2, .max_pattern_length = 3});
    table.AddRow({"TCFI (alpha=0.2)", TextTable::Num(t.Seconds(), 3),
                  TextTable::Num(r.NumPatterns()),
                  TextTable::Num(r.NumEdges())});
  }
  if (csv) table.PrintCsv(std::cout);
  else table.Print(std::cout);
  std::printf(
      "  (the strawman's NP/NE exceed TCFI's: merged transactions invent\n"
      "   patterns and binary presence cannot separate habits from noise)\n");
}

void AblateParallelTcfi(const DatabaseNetwork& net, bool csv) {
  std::printf("\n--- (6) parallel TCFI thread sweep (alpha=0) ---\n");
  TextTable table({"threads", "time(s)", "NP"});
  for (size_t threads : {1, 2, 4}) {
    WallTimer t;
    MiningResult r =
        RunTcfi(net, {.alpha = 0.0, .num_threads = threads});
    table.AddRow({TextTable::Num(static_cast<uint64_t>(threads)),
                  TextTable::Num(t.Seconds(), 3),
                  TextTable::Num(r.NumPatterns())});
  }
  if (csv) table.PrintCsv(std::cout);
  else table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ParseScale(argc, argv);
  const bool csv = bench::ParseCsvFlag(argc, argv);
  bench::PrintHeader("Ablations", "design-decision costs (DESIGN.md §4)",
                     scale);

  DatabaseNetwork full = bench::MakeBkLike(scale);
  Rng rng(3);
  auto sampled = SampleByBfs(
      full, std::min<size_t>(full.num_edges(),
                             static_cast<size_t>(1500 * scale)),
      rng);
  if (!sampled.ok()) {
    std::cerr << "sampling failed: " << sampled.status() << "\n";
    return 1;
  }
  const DatabaseNetwork& net = *sampled;
  std::printf("workload: BK-like BFS sample, %zu edges, %zu vertices\n",
              net.num_edges(), net.num_vertices());

  AblateMiners(net, csv);
  AblateFrequencyEngine(net, csv);
  AblateDecomposition(net, csv);
  AblateThreads(net, csv);
  AblateUnionBaseline(net, csv);
  AblateParallelTcfi(net, csv);
  return 0;
}
