// Reproduces Figure 3: the effects of the cohesion threshold α and the
// TCS frequency threshold ε on BFS-sampled BK/GW/AMINER networks.
//
// For each dataset and each α in the paper's grid, runs
//   TCS(ε = 0.1 / 0.2 / 0.3), TCFA, TCFI
// and reports Time, NP (#patterns = #maximal pattern trusses),
// NV (Σ vertices over trusses) and NE (Σ edges over trusses).
//
// Expected shapes (paper §7.1):
//  - TCS cost is flat in α and falls as ε grows;
//  - TCFA cost falls steeply as α grows (candidate explosion at small α);
//  - TCFI cost is flat and lowest at small α (orders of magnitude);
//  - TCFA ≡ TCFI results at every α; TCS loses trusses at small α.
//
// --counters additionally prints the §7.1 pruning-effectiveness numbers
// (MPTD calls of TCFA vs TCFI — paper: 622,852 vs 152,396 on AMINER-5k).
#include <cstring>
#include <iostream>

#include "bench_common.h"
#include "core/tcfa.h"
#include "core/tcfi.h"
#include "core/tcs.h"
#include "net/sampler.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

using namespace tcf;

namespace {

struct MethodRun {
  std::string name;
  double seconds;
  MiningResult result;
};

void RunDataset(const char* name, const DatabaseNetwork& full,
                size_t sample_edges, const std::vector<double>& alphas,
                bool csv, bool counters) {
  Rng rng(42);
  auto sampled = SampleByBfs(full, std::min(sample_edges, full.num_edges()),
                             rng);
  if (!sampled.ok()) {
    std::cerr << "sampling failed: " << sampled.status() << "\n";
    return;
  }
  const DatabaseNetwork& net = *sampled;
  std::printf("\n--- %s (BFS sample: %zu edges, %zu vertices) ---\n", name,
              net.num_edges(), net.num_vertices());

  TextTable table({"alpha", "method", "time(s)", "NP", "NV", "NE",
                   "mptd_calls"});
  for (double alpha : alphas) {
    std::vector<MethodRun> runs;
    for (double eps : {0.1, 0.2, 0.3}) {
      WallTimer t;
      MiningResult r = RunTcs(net, {.alpha = alpha, .epsilon = eps});
      runs.push_back({"TCS(eps=" + TextTable::Num(eps, 1) + ")", t.Seconds(),
                      std::move(r)});
    }
    {
      WallTimer t;
      MiningResult r = RunTcfa(net, {.alpha = alpha});
      runs.push_back({"TCFA", t.Seconds(), std::move(r)});
    }
    {
      WallTimer t;
      MiningResult r = RunTcfi(net, {.alpha = alpha});
      runs.push_back({"TCFI", t.Seconds(), std::move(r)});
    }
    for (const MethodRun& run : runs) {
      table.AddRow({TextTable::Num(alpha, 1), run.name,
                    TextTable::Num(run.seconds, 3),
                    TextTable::Num(run.result.NumPatterns()),
                    TextTable::Num(run.result.NumVertices()),
                    TextTable::Num(run.result.NumEdges()),
                    TextTable::Num(run.result.counters.mptd_calls)});
    }
    if (counters && alpha == alphas.front()) {
      const MiningResult& fa = runs[3].result;
      const MiningResult& fi = runs[4].result;
      std::printf(
          "  [counters @ alpha=%.1f] TCFA mptd=%llu | TCFI mptd=%llu "
          "pruned-by-intersection=%llu (%.1f%% of TCFA's calls avoided)\n",
          alpha,
          static_cast<unsigned long long>(fa.counters.mptd_calls),
          static_cast<unsigned long long>(fi.counters.mptd_calls),
          static_cast<unsigned long long>(
              fi.counters.pruned_by_intersection),
          fa.counters.mptd_calls == 0
              ? 0.0
              : 100.0 *
                    static_cast<double>(fi.counters.pruned_by_intersection) /
                    static_cast<double>(fa.counters.mptd_calls));
    }
  }
  if (csv) table.PrintCsv(std::cout);
  else table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ParseScale(argc, argv);
  const bool csv = bench::ParseCsvFlag(argc, argv);
  bool counters = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--counters") == 0) counters = true;
  }
  bench::PrintHeader("Figure 3", "effect of alpha and epsilon", scale);

  // Sample sizes match the paper: 10k edges from BK/GW, 5k from AMINER
  // (scaled by --scale).
  const std::vector<double> alphas = {0.0, 0.1, 0.2, 0.3, 0.5,
                                      1.0, 1.5, 2.0};
  {
    DatabaseNetwork bk = bench::MakeBkLike(scale);
    RunDataset("BK-like", bk, static_cast<size_t>(10000 * scale), alphas, csv,
               counters);
  }
  {
    DatabaseNetwork gw = bench::MakeGwLike(scale);
    RunDataset("GW-like", gw, static_cast<size_t>(10000 * scale), alphas, csv,
               counters);
  }
  {
    CoauthorNetwork am = bench::MakeAminerLike(scale);
    RunDataset("AMINER-like", am.network, static_cast<size_t>(5000 * scale),
               alphas, csv, counters);
  }

  std::printf(
      "\nShape checks vs. paper Fig. 3: TCS flat in alpha; TCFA cost falls\n"
      "with alpha; TCFI flat and fastest at small alpha; TCFA == TCFI\n"
      "results everywhere; TCS(eps) misses trusses at small alpha.\n");
  return 0;
}
