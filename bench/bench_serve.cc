// Load generator for the concurrent serving layer (src/serve/).
//
// Builds a TC-Tree over the BK-like and SYN datasets, synthesizes a
// skewed query workload (random item subsets, a few hot queries repeated
// often — real traffic is never uniform), and measures QueryService
// throughput at increasing worker counts, cold cache vs. warm cache.
//
// Expected shapes: warm throughput is a large multiple of cold (a hit is
// one shard lookup instead of a tree traversal); cold throughput scales
// with threads until the tree walk saturates memory bandwidth; the warm
// hit rate matches the workload's repetition rate.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/tc_tree.h"
#include "serve/query_service.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace tcf;

namespace {

/// A workload of `n` queries over the network's active items: 20% of the
/// queries are draws from a pool of 32 "hot" queries, the rest are
/// unique random subsets (1-4 items) with alphas in [0, 0.3).
std::vector<ServeQuery> MakeWorkload(const DatabaseNetwork& net, size_t n,
                                     uint64_t seed) {
  const std::vector<ItemId> items = net.ActiveItems();
  Rng rng(seed);
  auto random_query = [&] {
    const size_t len = 1 + rng.NextUint64(4);
    std::vector<ItemId> subset;
    for (size_t i = 0; i < len; ++i) {
      subset.push_back(items[rng.NextUint64(items.size())]);
    }
    return ServeQuery{Itemset(std::move(subset)),
                      0.1 * static_cast<double>(rng.NextUint64(4)) / 1.33};
  };
  std::vector<ServeQuery> hot;
  for (size_t i = 0; i < 32; ++i) hot.push_back(random_query());
  std::vector<ServeQuery> workload;
  workload.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBool(0.2)) {
      workload.push_back(hot[rng.NextUint64(hot.size())]);
    } else {
      workload.push_back(random_query());
    }
  }
  return workload;
}

void RunDataset(const char* name, const DatabaseNetwork& net, size_t queries,
                bool csv) {
  TcTree tree = TcTree::Build(net, {.num_threads = HardwareThreads(),
                                    .max_nodes = 1000000});
  std::printf("\n--- serve on %s (tree: %zu nodes, %zu queries/pass) ---\n",
              name, tree.num_nodes(), queries);
  const std::vector<ServeQuery> workload = MakeWorkload(net, queries, 17);

  TextTable table({"threads", "cold q/s", "cold p99(us)", "warm q/s",
                   "warm p99(us)", "warm/cold", "warm hit rate"});
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    // A fresh service per thread count: empty cache, cold first pass.
    QueryService service(tree, net.dictionary(), {.num_threads = threads});

    service.stats().Reset();
    service.ExecuteBatch(workload);
    const ServeReport cold = service.Report();

    service.stats().Reset();
    const ResultCacheStats before = service.cache_stats();
    service.ExecuteBatch(workload);
    const ServeReport warm = service.Report();
    ResultCacheStats delta = warm.cache;
    delta.hits -= before.hits;
    delta.misses -= before.misses;

    table.AddRow({TextTable::Num(static_cast<uint64_t>(threads)),
                  TextTable::Num(cold.qps, 0), TextTable::Num(cold.p99_us, 1),
                  TextTable::Num(warm.qps, 0), TextTable::Num(warm.p99_us, 1),
                  TextTable::Num(warm.qps / std::max(cold.qps, 1.0), 2),
                  TextTable::Num(delta.HitRate(), 3)});
  }
  if (csv) table.PrintCsv(std::cout);
  else table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ParseScale(argc, argv);
  const bool csv = bench::ParseCsvFlag(argc, argv);
  bench::PrintHeader("Serve", "QueryService throughput, cold vs. warm cache",
                     scale);

  const size_t queries =
      static_cast<size_t>(20000 * std::max(0.05, scale));
  {
    DatabaseNetwork bk = bench::MakeBkLike(scale);
    RunDataset("BK-like", bk, queries, csv);
  }
  {
    DatabaseNetwork syn = bench::MakeSynLike(scale);
    RunDataset("SYN", syn, queries, csv);
  }

  std::printf(
      "\nShape checks: warm q/s >> cold q/s (cache hits skip the tree\n"
      "walk); cold q/s grows with threads; warm hit rate ~= workload\n"
      "repetition rate (~20%% hot traffic + exact repeats).\n");
  return 0;
}
