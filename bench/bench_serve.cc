// Load generator for the concurrent serving layer (src/serve/).
//
// Builds a TC-Tree over the BK-like and SYN datasets, synthesizes a
// skewed query workload (random item subsets, a few hot queries repeated
// often — real traffic is never uniform), and measures QueryService
// throughput at increasing worker counts, cold cache vs. warm cache.
//
// With --zipf, the workload switches to overlapping itemsets (Zipf-hot
// theme cores under changing widenings — rare exact repeats, pervasive
// subset overlap) and the harness races the exact-only cache against
// the subset-composable one (QueryServiceOptions::cache_composition),
// reporting partial hits, composed queries, and admission rejects. The
// composable cache must win warm throughput here: exact keys almost
// never repeat, but the hot cores are reusable covers.
//
// With --net, the same workload additionally runs over loopback TCP:
// the epoll-driven TcpServer fronts the service and 1..--connections=C
// blocking `Client`s replay the queries as `alpha;item,...` protocol
// lines — pipelined `BATCH` exchanges of --depth=D queries per round
// trip (D=1 falls back to one request per round trip) — measuring both
// client-observed end-to-end throughput and the server's own aggregate
// QPS / p99 from ServeStats. After the connection ramp, a full pass at
// the top connection count runs with a mid-pass RELOAD to demonstrate
// that a snapshot swap under pipelined load drops zero responses.
//
// Expected shapes: warm throughput is a large multiple of cold (a hit is
// one shard lookup instead of a tree traversal); cold throughput scales
// with threads until the tree walk saturates memory bandwidth; the warm
// hit rate matches the workload's repetition rate. Network throughput
// rises with pipeline depth (framing amortizes the round trip) and
// holds as connections grow into the hundreds — idle connections cost
// the server a file descriptor, not a thread.
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "core/tc_tree.h"
#include "core/tc_tree_io.h"
#include "core/tc_tree_update.h"
#include "core/tcfi_format.h"
#include "serve/client.h"
#include "serve/line_protocol.h"
#include "serve/query_backend.h"
#include "serve/query_service.h"
#include "serve/shard_router.h"
#include "serve/tcp_server.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace tcf;

namespace {

/// A workload of `n` queries over the network's active items: 20% of the
/// queries are draws from a pool of 32 "hot" queries, the rest are
/// unique random subsets (1-4 items) with alphas in [0, 0.3).
std::vector<ServeQuery> MakeWorkload(const DatabaseNetwork& net, size_t n,
                                     uint64_t seed) {
  const std::vector<ItemId> items = net.ActiveItems();
  Rng rng(seed);
  auto random_query = [&] {
    const size_t len = 1 + rng.NextUint64(4);
    std::vector<ItemId> subset;
    for (size_t i = 0; i < len; ++i) {
      subset.push_back(items[rng.NextUint64(items.size())]);
    }
    return ServeQuery{Itemset(std::move(subset)),
                      0.1 * static_cast<double>(rng.NextUint64(4)) / 1.33};
  };
  std::vector<ServeQuery> hot;
  for (size_t i = 0; i < 32; ++i) hot.push_back(random_query());
  std::vector<ServeQuery> workload;
  workload.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBool(0.2)) {
      workload.push_back(hot[rng.NextUint64(hot.size())]);
    } else {
      workload.push_back(random_query());
    }
  }
  return workload;
}

void RunDataset(const char* name, const DatabaseNetwork& net, size_t queries,
                bool csv, bool tracing, bench::JsonWriter* json) {
  TcTree tree = TcTree::Build(net, {.num_threads = HardwareThreads(),
                                    .max_nodes = 1000000});
  std::printf("\n--- serve on %s (tree: %zu nodes, %zu queries/pass) ---\n",
              name, tree.num_nodes(), queries);
  const std::vector<ServeQuery> workload = MakeWorkload(net, queries, 17);

  TextTable table({"threads", "cold q/s", "cold p99(us)", "warm q/s",
                   "warm p99(us)", "warm/cold", "warm hit rate"});
  const size_t thread_counts[] = {1, 2, 4, 8};
  for (size_t threads : thread_counts) {
    // A fresh service per thread count: empty cache, cold first pass.
    QueryServiceOptions options;
    options.num_threads = threads;
    options.tracing = tracing;
    QueryService service(tree, net.dictionary(), options);

    service.stats().Reset();
    service.ExecuteBatch(workload);
    const ServeReport cold = service.Report();

    service.stats().Reset();
    const ResultCacheStats before = service.cache_stats();
    service.ExecuteBatch(workload);
    const ServeReport warm = service.Report();
    ResultCacheStats delta = warm.cache;
    delta.hits -= before.hits;
    delta.misses -= before.misses;

    table.AddRow({TextTable::Num(static_cast<uint64_t>(threads)),
                  TextTable::Num(cold.qps, 0), TextTable::Num(cold.p99_us, 1),
                  TextTable::Num(warm.qps, 0), TextTable::Num(warm.p99_us, 1),
                  TextTable::Num(warm.qps / std::max(cold.qps, 1.0), 2),
                  TextTable::Num(delta.HitRate(), 3)});

    // The JSON artifact keeps the widest row only — the one
    // docs/performance.md quotes and the one whose regression matters.
    if (json != nullptr && threads == thread_counts[3]) {
      const std::string p = "serve." + bench::KeySlug(name) + ".";
      json->Add(p + "threads", static_cast<uint64_t>(threads));
      json->Add(p + "cold_qps", cold.qps);
      json->Add(p + "cold_p50_us", cold.p50_us);
      json->Add(p + "cold_p99_us", cold.p99_us);
      json->Add(p + "warm_qps", warm.qps);
      json->Add(p + "warm_p50_us", warm.p50_us);
      json->Add(p + "warm_p99_us", warm.p99_us);
      json->Add(p + "warm_hit_rate", delta.HitRate());
    }
  }
  if (csv) table.PrintCsv(std::cout);
  else table.Print(std::cout);
}

/// An overlapping-itemset workload for --zipf: queries share Zipf-hot
/// "theme cores" (2-3 items), each widened with 0-2 extra skewed items,
/// and alphas land in 4 buckets. Exact repeats are rare — the same core
/// resurfaces under ever-different widenings — so an exact-match cache
/// stays cold while subset composition reuses the shared cores.
std::vector<ServeQuery> MakeZipfWorkload(const DatabaseNetwork& net, size_t n,
                                         uint64_t seed) {
  const std::vector<ItemId> items = net.ActiveItems();
  // Two generators so each keeps its own warm Zipf CDF: Rng caches one
  // table keyed on (n, s), and alternating item draws (n = |items|)
  // with core draws (n = 48) through one Rng would rebuild the O(n)
  // pow table nearly every call.
  Rng item_rng(seed);
  Rng core_rng(seed ^ 0x9e3779b97f4a7c15ull);
  auto zipf_item = [&] {
    return items[item_rng.NextZipf(items.size(), 1.07)];
  };
  std::vector<Itemset> cores;
  for (size_t i = 0; i < 48; ++i) {
    std::vector<ItemId> core;
    const size_t len = 2 + core_rng.NextUint64(2);
    for (size_t j = 0; j < len; ++j) core.push_back(zipf_item());
    cores.push_back(Itemset(std::move(core)));
  }

  std::vector<ServeQuery> workload;
  workload.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Itemset q = cores[core_rng.NextZipf(cores.size(), 1.07)];
    const size_t widen = core_rng.NextUint64(3);
    for (size_t j = 0; j < widen; ++j) q = q.Union(zipf_item());
    workload.push_back(
        {std::move(q), 0.05 * static_cast<double>(core_rng.NextUint64(4))});
  }
  return workload;
}

/// --zipf: exact-only cache vs. subset-composable cache over the
/// overlapping workload above. The warmup pass fills the cache; the
/// measured pass replays *fresh* queries (same hot cores, new
/// widenings), so the exact-match cache almost never hits while the
/// composable cache assembles answers from the cores it has already
/// paid for. This "fresh q/s" column — throughput in the regime where
/// exact-match caching misses — is the number docs/performance.md
/// quotes, and the composable cache must win it with partial hits > 0.
void RunZipfDataset(const char* name, const DatabaseNetwork& net,
                    size_t queries, bool csv, bool tracing,
                    bench::JsonWriter* json) {
  TcTree tree = TcTree::Build(net, {.num_threads = HardwareThreads(),
                                    .max_nodes = 1000000});
  std::printf(
      "\n--- serve --zipf on %s (tree: %zu nodes, %zu queries/pass) ---\n",
      name, tree.num_nodes(), queries);
  // One stream, two halves: the halves share cores (overlap) but almost
  // no exact keys, which is exactly the traffic shape that defeats an
  // exact-match cache.
  const std::vector<ServeQuery> stream =
      MakeZipfWorkload(net, 2 * queries, 17);
  const std::vector<ServeQuery> warmup(stream.begin(),
                                       stream.begin() + queries);
  const std::vector<ServeQuery> fresh(stream.begin() + queries,
                                      stream.end());

  TextTable table({"cache", "warmup q/s", "fresh q/s", "exact hit rate",
                   "partial hits", "composed", "adm rejects"});
  double fresh_qps[2] = {0, 0};
  uint64_t partial_hits = 0;
  uint64_t composed = 0;
  for (int composable = 0; composable < 2; ++composable) {
    QueryServiceOptions options;
    options.num_threads = 4;
    // Roomy cache: this run compares reuse strategies, not eviction
    // behavior under memory pressure.
    options.cache_bytes = size_t{256} << 20;
    options.cache_composition = composable != 0;
    options.cache_admit_derived = composable != 0;
    options.tracing = tracing;
    QueryService service(tree, net.dictionary(), options);

    service.stats().Reset();
    service.ExecuteBatch(warmup);
    const ServeReport warm = service.Report();

    service.stats().Reset();
    const ResultCacheStats before = service.cache_stats();
    service.ExecuteBatch(fresh);
    const ServeReport measured = service.Report();
    ResultCacheStats delta = measured.cache;
    delta.hits -= before.hits;
    delta.misses -= before.misses;
    delta.partial_hits -= before.partial_hits;
    delta.composed_queries -= before.composed_queries;
    delta.admission_rejects -= before.admission_rejects;

    fresh_qps[composable] = measured.qps;
    if (composable) {
      partial_hits = delta.partial_hits;
      composed = delta.composed_queries;
    }
    table.AddRow({composable ? "composable" : "exact-only",
                  TextTable::Num(warm.qps, 0),
                  TextTable::Num(measured.qps, 0),
                  TextTable::Num(delta.HitRate(), 3),
                  TextTable::Num(delta.partial_hits),
                  TextTable::Num(delta.composed_queries),
                  TextTable::Num(delta.admission_rejects)});
  }
  if (csv) table.PrintCsv(std::cout);
  else table.Print(std::cout);
  if (json != nullptr) {
    const std::string p = "serve_zipf." + bench::KeySlug(name) + ".";
    json->Add(p + "fresh_qps_exact", fresh_qps[0]);
    json->Add(p + "fresh_qps_composable", fresh_qps[1]);
    json->Add(p + "partial_hits", partial_hits);
    json->Add(p + "composed", composed);
  }
  // Two acceptable outcomes, decided by the work-aware gate
  // (QueryServiceOptions::cache_compose_min_walk_us): where walks are
  // expensive the gate engages and composition must WIN with partial
  // hits; where walks are already nearly free the gate must keep reuse
  // off and stay within noise of exact-only.
  const double ratio = fresh_qps[0] > 0 ? fresh_qps[1] / fresh_qps[0] : 0.0;
  if (composed > queries / 100) {
    std::printf("partial reuse (gate engaged): %s — fresh-traffic partial "
                "hits %llu, composable vs exact-only on fresh queries: "
                "%.2fx\n",
                partial_hits > 0 && ratio > 1.0 ? "OK" : "FAIL",
                static_cast<unsigned long long>(partial_hits), ratio);
  } else {
    std::printf("partial reuse (gate off — walks too cheap to compose): "
                "%s — composable within %.2fx of exact-only\n",
                ratio >= 0.9 ? "OK" : "FAIL", ratio);
  }
}

/// --shards: QPS/p99 per shard count over the Zipf workload (one tree,
/// partitioned N ways; scatter-gather merge per query). The shards=1
/// row is the plain unsharded QueryService — the baseline the router
/// overhead is measured against. Every row must return the same truss
/// count (the answers are property-tested equal in
/// tests/shard_router_test.cc; this is the belt-and-braces smoke).
void RunShardDataset(const char* name, const DatabaseNetwork& net,
                     size_t queries, bool csv, bool tracing,
                     bench::JsonWriter* json) {
  TcTree tree = TcTree::Build(net, {.num_threads = HardwareThreads(),
                                    .max_nodes = 1000000});
  std::printf(
      "\n--- serve --shards on %s (tree: %zu nodes, %zu queries/pass) ---\n",
      name, tree.num_nodes(), queries);
  const std::vector<ServeQuery> stream =
      MakeZipfWorkload(net, 2 * queries, 17);
  const std::vector<ServeQuery> cold(stream.begin(),
                                     stream.begin() + queries);
  const std::vector<ServeQuery> fresh(stream.begin() + queries,
                                      stream.end());

  TextTable table({"shards", "cold q/s", "fresh q/s", "fresh p99(us)",
                   "fan-out", "trusses"});
  uint64_t expect_trusses = 0;
  bool parity_ok = true;
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    QueryServiceOptions options;
    options.num_threads = 4;
    options.cache_bytes = size_t{256} << 20;
    options.tracing = tracing;
    std::unique_ptr<QueryBackend> backend;
    if (shards == 1) {
      backend = std::make_unique<QueryService>(tree, net.dictionary(),
                                               options);
    } else {
      backend = std::make_unique<ShardedQueryService>(
          tree, net.dictionary(), shards, options);
    }

    backend->stats().Reset();
    backend->ExecuteBatch(cold);
    const ServeReport cold_report = backend->Report();

    const uint64_t shard_queries_before = backend->Report().shard_queries;
    backend->stats().Reset();
    backend->ExecuteBatch(fresh);
    const ServeReport report = backend->Report();

    const uint64_t trusses =
        cold_report.trusses_returned + report.trusses_returned;
    if (shards == 1) expect_trusses = trusses;
    if (trusses != expect_trusses) parity_ok = false;
    // shard_queries is a lifetime counter; scope it to the fresh pass.
    const double fanout =
        report.queries > 0 && report.shards > 0
            ? static_cast<double>(report.shard_queries -
                                  shard_queries_before) /
                  static_cast<double>(report.queries)
            : 1.0;
    table.AddRow({shards == 1 ? "1 (unsharded)" : TextTable::Num(shards),
                  TextTable::Num(cold_report.qps, 0),
                  TextTable::Num(report.qps, 0),
                  TextTable::Num(report.p99_us, 1), TextTable::Num(fanout, 2),
                  TextTable::Num(trusses)});
    if (json != nullptr) {
      const std::string p = "serve_shards." + bench::KeySlug(name) + ".";
      json->Add(p + StrFormat("fresh_qps_shards%zu", shards), report.qps);
      json->Add(p + StrFormat("fresh_p99_us_shards%zu", shards),
                report.p99_us);
    }
  }
  if (csv) table.PrintCsv(std::cout);
  else table.Print(std::cout);
  std::printf("shard parity (same trusses at every shard count): %s\n",
              parity_ok ? "OK" : "FAIL");
}

/// Bytes on disk, or 0 when the file cannot be stat'ed.
uint64_t FileSizeBytes(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size)
                                        : 0;
}

/// Resident set size in MiB (/proc on Linux, 0 elsewhere — the RSS
/// column then reads 0 and the table still prints).
double ResidentMb() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long total = 0;
  unsigned long resident = 0;
  const int got = std::fscanf(f, "%lu %lu", &total, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<double>(resident) *
         static_cast<double>(::sysconf(_SC_PAGESIZE)) / (1024.0 * 1024.0);
#else
  return 0;
#endif
}

/// --reload: snapshot swap latency, text deserialize vs. zero-copy mmap.
/// One tree is saved in both formats and a live QueryService reloads
/// each through the format-sniffing ReloadFromFile entry point — exactly
/// what the RELOAD verb and `--watch` execute — so the measured medians
/// are the serving-visible swap latencies. The mmap path builds no heap
/// arena (header + checksum validation, then pointer casts into the
/// mapping), so it must be an order of magnitude faster; docs/
/// performance.md quotes this table and CI gates the _ms keys. The RSS
/// column shows the replica economics: extra mapped replicas of one
/// already-validated artifact fault their pages from the shared page
/// cache (marginal RSS ~0), where every deserialized replica pays the
/// full heap arena again.
void RunReloadDataset(const char* name, const DatabaseNetwork& net, bool csv,
                      bool tracing, bench::JsonWriter* json) {
  TcTree tree = TcTree::Build(net, {.num_threads = HardwareThreads(),
                                    .max_nodes = 1000000});
  std::printf("\n--- serve --reload on %s (tree: %zu nodes) ---\n", name,
              tree.num_nodes());
  const std::string base =
      StrFormat("/tmp/bench_serve_reload_%d_%s",
                static_cast<int>(::getpid()), bench::KeySlug(name).c_str());
  const std::string tcft = base + ".tcft";
  const std::string tcfi = base + ".tcfi";
  if (Status s = SaveTcTreeToFile(tree, tcft); !s.ok()) {
    std::fprintf(stderr, "bench_serve: save text index: %s\n",
                 s.ToString().c_str());
    return;
  }
  if (Status s = SaveTcTreeBinary(tree, tcfi); !s.ok()) {
    std::fprintf(stderr, "bench_serve: save tcfi index: %s\n",
                 s.ToString().c_str());
    return;
  }

  QueryServiceOptions options;
  options.tracing = tracing;
  QueryService service(tree, net.dictionary(), options);

  constexpr int kRepeats = 7;
  auto median = [](std::vector<double> ms) {
    std::sort(ms.begin(), ms.end());
    return ms.empty() ? 0.0 : ms[ms.size() / 2];
  };
  auto reload_median_ms = [&](const std::string& path) {
    std::vector<double> ms;
    for (int r = 0; r < kRepeats; ++r) {
      WallTimer t;
      auto nodes = service.ReloadFromFile(path);
      if (!nodes.ok()) {
        std::fprintf(stderr, "bench_serve: reload %s: %s\n", path.c_str(),
                     nodes.status().ToString().c_str());
        return 0.0;
      }
      ms.push_back(t.Millis());
    }
    return median(std::move(ms));
  };

  const double text_ms = reload_median_ms(tcft);
  const double mmap_ms = reload_median_ms(tcfi);

  // Map-only latency: MapTcTree alone (validate + cast), without the
  // service's swap/invalidation. This is the O(1)-per-node claim.
  std::vector<double> map_samples;
  for (int r = 0; r < kRepeats; ++r) {
    WallTimer t;
    auto mapped = MapTcTree(tcfi);
    if (!mapped.ok()) {
      std::fprintf(stderr, "bench_serve: map %s: %s\n", tcfi.c_str(),
                   mapped.status().ToString().c_str());
      return;
    }
    map_samples.push_back(t.Millis());
  }
  const double map_ms = median(std::move(map_samples));

  // Replica economics: extra maps of an artifact the first open already
  // validated (so no checksum pass touching every page — pages fault in
  // on demand from the shared page cache).
  const double heap_mb =
      static_cast<double>(tree.MemoryBytes()) / (1 << 20);
  constexpr size_t kReplicas = 8;
  double rss_per_map_mb = 0;
  {
    std::vector<MappedTcTree> replicas;
    replicas.reserve(kReplicas);
    const double before = ResidentMb();
    for (size_t i = 0; i < kReplicas; ++i) {
      auto mapped = MapTcTree(
          tcfi, {.verify_checksums = false, .validate_structure = false});
      if (!mapped.ok()) break;
      replicas.push_back(std::move(*mapped));
    }
    rss_per_map_mb =
        std::max(0.0, (ResidentMb() - before) /
                          static_cast<double>(kReplicas));
  }

  const double text_mb =
      static_cast<double>(FileSizeBytes(tcft)) / (1 << 20);
  const double tcfi_mb =
      static_cast<double>(FileSizeBytes(tcfi)) / (1 << 20);
  const double speedup = mmap_ms > 0 ? text_ms / mmap_ms : 0.0;

  TextTable table({"path", "file MiB", "swap p50(ms)", "vs text",
                   "RSS/replica MiB"});
  table.AddRow({"text deserialize", TextTable::Num(text_mb, 2),
                TextTable::Num(text_ms, 3), TextTable::Num(1.0, 2),
                TextTable::Num(heap_mb, 2)});
  table.AddRow({"tcfi mmap", TextTable::Num(tcfi_mb, 2),
                TextTable::Num(mmap_ms, 3), TextTable::Num(speedup, 2),
                TextTable::Num(rss_per_map_mb, 2)});
  table.AddRow({"tcfi map only", TextTable::Num(tcfi_mb, 2),
                TextTable::Num(map_ms, 3),
                TextTable::Num(map_ms > 0 ? text_ms / map_ms : 0.0, 2),
                TextTable::Num(rss_per_map_mb, 2)});
  if (csv) table.PrintCsv(std::cout);
  else table.Print(std::cout);
  std::printf("mmap swap vs text deserialize: %.1fx (target >= 10x): %s\n",
              speedup, speedup >= 10.0 ? "OK" : "FAIL");

  if (json != nullptr) {
    const std::string p = "serve_reload." + bench::KeySlug(name) + ".";
    json->Add(p + "nodes", static_cast<uint64_t>(tree.num_nodes()));
    json->Add(p + "text_reload_ms", text_ms);
    json->Add(p + "mmap_reload_ms", mmap_ms);
    json->Add(p + "mmap_map_ms", map_ms);
    json->Add(p + "mmap_speedup", speedup);
    json->Add(p + "text_file_mb", text_mb);
    json->Add(p + "tcfi_file_mb", tcfi_mb);
    json->Add(p + "owned_heap_mb", heap_mb);
    json->Add(p + "rss_per_map_mb", rss_per_map_mb);
  }
  std::remove(tcft.c_str());
  std::remove(tcfi.c_str());
}

/// Randomized streaming-update batch for --churn: mostly transaction
/// inserts over existing vocabulary, a minority of edge inserts — the
/// shape the UPDATE verb carries in production.
NetworkUpdate RandomChurnBatch(Rng& rng, const DatabaseNetwork& net,
                               size_t ops) {
  NetworkUpdate u;
  const size_t v = net.num_vertices();
  const size_t items = net.num_items();
  for (size_t i = 0; i < ops; ++i) {
    if (rng.NextBool(0.3) && v >= 2) {
      VertexId a = static_cast<VertexId>(rng.NextUint64(v));
      VertexId b = static_cast<VertexId>(rng.NextUint64(v));
      if (a == b) b = (b + 1) % v;
      u.edges.push_back(MakeEdge(a, b));
    } else {
      NetworkUpdate::TxInsert tx;
      tx.vertex = static_cast<VertexId>(rng.NextUint64(v));
      const size_t len = 1 + rng.NextUint64(3);
      std::vector<ItemId> ids;
      for (size_t k = 0; k < len; ++k) {
        ids.push_back(static_cast<ItemId>(rng.NextUint64(items)));
      }
      tx.items = Itemset(std::move(ids));
      u.transactions.push_back(std::move(tx));
    }
  }
  return u;
}

/// --churn: mixed query/update load. Four reader threads replay the
/// skewed workload against a warm composing cache while an IndexUpdater
/// applies randomized update batches through ApplyUpdatedSnapshot
/// (targeted invalidation, shard-skipping rolling swaps). Reported per
/// shard count: query q/s and p99 with no updates in flight (base) vs
/// under churn, plus freshness latency — the wall time from Apply to
/// the new snapshot serving — p50/p99. The churn p99 should stay within
/// small multiples of base (updates rebuild off the read path and swap
/// epoch-safely), and freshness should sit at incremental-replay cost,
/// far under a from-scratch build.
void RunChurnDataset(const char* name,
                     const std::function<DatabaseNetwork()>& make_net,
                     size_t queries, size_t update_batches, bool csv,
                     bool tracing, bench::JsonWriter* json) {
  TextTable table({"shards", "base q/s", "base p99(us)", "churn q/s",
                   "churn p99(us)", "fresh p50(ms)", "fresh p99(ms)",
                   "rebuilds"});
  bool printed_header = false;
  // Depth-capped build: churn measures the *incremental* replay, and a
  // node-budget-truncated tree (SYN overflows 1M nodes even at small
  // scales) would force the full-rebuild fallback on every batch. A
  // complete depth-3 index keeps the replay path honest on both
  // datasets; the updater below must replay with identical options.
  const TcTreeOptions build_options{.num_threads = HardwareThreads(),
                                    .max_depth = 3};
  for (const size_t shards : {size_t{1}, size_t{4}}) {
    DatabaseNetwork net = make_net();
    TcTree tree = TcTree::Build(net, build_options);
    if (!printed_header) {
      std::printf(
          "\n--- serve --churn on %s (tree: %zu nodes, %zu queries/pass, "
          "%zu update batches) ---\n",
          name, tree.num_nodes(), queries, update_batches);
      printed_header = true;
    }
    QueryServiceOptions options;
    options.num_threads = 4;
    options.cache_bytes = size_t{256} << 20;
    options.cache_composition = true;
    options.cache_admit_derived = true;
    options.tracing = tracing;
    std::unique_ptr<QueryBackend> backend;
    if (shards == 1) {
      backend = std::make_unique<QueryService>(tree, net.dictionary(),
                                               options);
    } else {
      backend = std::make_unique<ShardedQueryService>(tree, net.dictionary(),
                                                      shards, options);
    }
    const std::vector<ServeQuery> workload = MakeWorkload(net, queries, 17);

    // Base pass: the same warm-cache traffic with no updates in flight.
    backend->stats().Reset();
    backend->ExecuteBatch(workload);
    backend->stats().Reset();
    backend->ExecuteBatch(workload);
    const ServeReport base = backend->Report();

    // The replay MUST use the options the serving tree was built with;
    // an unbounded replay of a capped build would re-enumerate the full
    // pattern space.
    IndexUpdater updater(
        std::move(net), std::move(tree),
        [&backend](TcTree t, const std::vector<ItemId>& changed_roots,
                   const std::vector<ItemId>& dirty_items) {
          return backend->ApplyUpdatedSnapshot(std::move(t), changed_roots,
                                               dirty_items);
        },
        build_options);

    std::atomic<bool> stop{false};
    backend->stats().Reset();  // cache stays warm: survivors keep serving
    std::vector<std::thread> readers;
    for (size_t r = 0; r < 4; ++r) {
      readers.emplace_back([&, r] {
        size_t i = r;
        while (!stop.load(std::memory_order_acquire)) {
          (void)backend->Execute(workload[i % workload.size()]);
          i += 4;
        }
      });
    }

    std::vector<double> freshness;
    freshness.reserve(update_batches);
    Rng rng(29);
    uint64_t rebuilds = 0;
    for (size_t b = 0; b < update_batches; ++b) {
      NetworkUpdate u = RandomChurnBatch(rng, updater.network(), 4);
      auto outcome = updater.Apply(std::move(u));
      if (!outcome.ok()) {
        std::fprintf(stderr, "bench_serve: churn batch %zu: %s\n", b,
                     outcome.status().ToString().c_str());
        continue;
      }
      freshness.push_back(outcome->apply_ms);
      if (outcome->stats.full_rebuild) ++rebuilds;
      // A beat of query-only traffic between batches, so the measured
      // p99 covers mixed load rather than back-to-back swaps.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    stop.store(true, std::memory_order_release);
    for (auto& th : readers) th.join();
    const ServeReport churn = backend->Report();

    std::sort(freshness.begin(), freshness.end());
    const double fresh_p50 =
        freshness.empty() ? 0 : freshness[freshness.size() / 2];
    const double fresh_p99 =
        freshness.empty()
            ? 0
            : freshness[std::min(
                  freshness.size() - 1,
                  static_cast<size_t>(0.99 * (freshness.size() - 1) + 0.5))];

    table.AddRow({shards == 1 ? "1 (unsharded)" : TextTable::Num(shards),
                  TextTable::Num(base.qps, 0), TextTable::Num(base.p99_us, 1),
                  TextTable::Num(churn.qps, 0),
                  TextTable::Num(churn.p99_us, 1),
                  TextTable::Num(fresh_p50, 2), TextTable::Num(fresh_p99, 2),
                  TextTable::Num(rebuilds)});
    if (json != nullptr) {
      const std::string p = StrFormat(
          "serve_churn.%s.shards%zu.", bench::KeySlug(name).c_str(), shards);
      json->Add(p + "base_qps", base.qps);
      json->Add(p + "base_p99_us", base.p99_us);
      json->Add(p + "churn_qps", churn.qps);
      json->Add(p + "churn_p99_us", churn.p99_us);
      json->Add(p + "fresh_p50_ms", fresh_p50);
      json->Add(p + "fresh_p99_ms", fresh_p99);
    }
  }
  if (csv) table.PrintCsv(std::cout);
  else table.Print(std::cout);
}

/// Client-observed outcome of one timed network pass.
struct PassResult {
  double qps = 0;        // queries answered / wall seconds
  double p99_rt_us = 0;  // p99 of round-trip latency (one RT = one
                         // exchange: a single query, or a whole batch)
  size_t answered = 0;   // query responses received (OK or carried ERR)
  size_t failed = 0;     // transport/protocol failures
};

/// One timed network pass: `lines[i]` belongs to connection i % n; each
/// connection is a blocking client on its own thread, sending its slice
/// in pipelined BATCH exchanges of `depth` queries (depth 1 = the
/// unpipelined request/response loop).
PassResult NetworkPass(uint16_t port, const std::vector<std::string>& lines,
                       size_t connections, size_t depth) {
  std::vector<std::vector<double>> latencies(connections);
  std::vector<std::thread> threads;
  std::atomic<size_t> failed{0};
  std::atomic<size_t> answered{0};
  WallTimer wall;
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      auto client = Client::Connect("127.0.0.1", port);
      if (!client.ok()) {
        std::fprintf(stderr, "bench_serve: connection %zu: %s\n", c,
                     client.status().ToString().c_str());
        ++failed;
        return;
      }
      std::vector<std::string> mine;
      for (size_t i = c; i < lines.size(); i += connections) {
        mine.push_back(lines[i]);
      }
      for (size_t begin = 0; begin < mine.size(); begin += depth) {
        const size_t end = std::min(mine.size(), begin + depth);
        WallTimer t;
        if (depth == 1) {
          auto trusses = (*client)->Query(mine[begin]);
          if (!trusses.ok()) {
            std::fprintf(stderr, "bench_serve: connection %zu: %s\n", c,
                         trusses.status().ToString().c_str());
            ++failed;
            return;
          }
          ++answered;
        } else {
          const std::vector<std::string> chunk(mine.begin() + begin,
                                               mine.begin() + end);
          auto items = (*client)->Batch(chunk);
          if (!items.ok()) {
            std::fprintf(stderr, "bench_serve: connection %zu: %s\n", c,
                         items.status().ToString().c_str());
            ++failed;
            return;
          }
          for (const Client::BatchItem& item : *items) {
            if (!item.status.ok()) {
              std::fprintf(stderr, "bench_serve: connection %zu: %s\n", c,
                           item.status.ToString().c_str());
              ++failed;
              return;
            }
            ++answered;
          }
        }
        latencies[c].push_back(t.Micros());
      }
      (void)(*client)->Quit();
    });
  }
  for (auto& th : threads) th.join();
  const double seconds = wall.Seconds();
  if (failed > 0) {
    // Partial passes would print plausible but wrong q/s; say so loudly.
    std::fprintf(stderr,
                 "bench_serve: %zu failures across %zu connections; this "
                 "pass's numbers cover only the surviving traffic\n",
                 failed.load(), connections);
  }

  PassResult result;
  result.answered = answered.load();
  result.failed = failed.load();
  std::vector<double> all;
  for (const auto& l : latencies) all.insert(all.end(), l.begin(), l.end());
  if (all.empty()) return result;
  std::sort(all.begin(), all.end());
  result.qps = seconds > 0
                   ? static_cast<double>(result.answered) / seconds
                   : 0;
  result.p99_rt_us = all[std::min(
      all.size() - 1, static_cast<size_t>(0.99 * (all.size() - 1) + 0.5))];
  return result;
}

/// The connection ramp: 1, 2, 4, ... doubling, always ending exactly on
/// `max` (so --connections=1000 measures 1000, not 512).
std::vector<size_t> ConnectionRamp(size_t max) {
  std::vector<size_t> ramp;
  for (size_t c = 1; c < max; c *= 2) ramp.push_back(c);
  ramp.push_back(max);
  return ramp;
}

/// Network mode: the same skewed workload, replayed as protocol lines
/// over loopback TCP at increasing connection counts. Prints the
/// client-observed table, the server-side aggregate (ServeStats) table,
/// and finishes with a RELOAD-under-load pass at the top connection
/// count that must drop zero responses.
void RunNetworkDataset(const char* name, const DatabaseNetwork& net,
                       size_t queries, size_t max_connections, size_t depth,
                       bool csv, bool tracing, bench::JsonWriter* json) {
  TcTree tree = TcTree::Build(net, {.num_threads = HardwareThreads(),
                                    .max_nodes = 1000000});
  std::printf(
      "\n--- serve --net on %s (tree: %zu nodes, %zu queries/pass, "
      "batch depth %zu) ---\n",
      name, tree.num_nodes(), queries, depth);
  const std::vector<ServeQuery> workload = MakeWorkload(net, queries, 17);
  std::vector<std::string> lines;
  lines.reserve(workload.size());
  for (const ServeQuery& q : workload) {
    lines.push_back(EncodeQueryLine(net.dictionary(), q));
  }

  TextTable client_table({"conns", "cold q/s", "cold p99 rt(us)",
                          "warm q/s", "warm p99 rt(us)", "warm hit rate",
                          "KiB in", "KiB out"});
  // The satellite requirement: aggregate QPS and p99 from the server's
  // own ServeStats, so performance.md numbers come from one command.
  TextTable server_table({"conns", "cold srv q/s", "cold srv p99(us)",
                          "warm srv q/s", "warm srv p99(us)"});
  for (size_t connections : ConnectionRamp(max_connections)) {
    QueryServiceOptions service_options;
    service_options.tracing = tracing;
    QueryService service(tree, net.dictionary(), service_options);
    TcpServerOptions options;
    options.num_threads = HardwareThreads();
    // All C clients connect in one burst; a backlog smaller than that
    // drops SYNs and the ~1s retransmit pollutes every number.
    options.backlog = static_cast<int>(std::max<size_t>(64, connections));
    TcpServer server(service, options);
    if (Status s = server.Start(); !s.ok()) {
      std::fprintf(stderr, "bench_serve: %s\n", s.ToString().c_str());
      return;
    }

    service.stats().Reset();
    const PassResult cold = NetworkPass(server.port(), lines, connections,
                                        depth);
    const ServeReport cold_srv = service.Report();

    const ResultCacheStats before = service.cache_stats();
    service.stats().Reset();
    const PassResult warm = NetworkPass(server.port(), lines, connections,
                                        depth);
    const ServeReport warm_srv = service.Report();
    ResultCacheStats delta = service.cache_stats();
    delta.hits -= before.hits;
    delta.misses -= before.misses;

    client_table.AddRow({TextTable::Num(static_cast<uint64_t>(connections)),
                         TextTable::Num(cold.qps, 0),
                         TextTable::Num(cold.p99_rt_us, 1),
                         TextTable::Num(warm.qps, 0),
                         TextTable::Num(warm.p99_rt_us, 1),
                         TextTable::Num(delta.HitRate(), 3),
                         TextTable::Num(warm_srv.bytes_in / 1024.0, 1),
                         TextTable::Num(warm_srv.bytes_out / 1024.0, 1)});
    server_table.AddRow({TextTable::Num(static_cast<uint64_t>(connections)),
                         TextTable::Num(cold_srv.qps, 0),
                         TextTable::Num(cold_srv.p99_us, 1),
                         TextTable::Num(warm_srv.qps, 0),
                         TextTable::Num(warm_srv.p99_us, 1)});
    if (json != nullptr && connections == max_connections) {
      const std::string p = "serve_net." + bench::KeySlug(name) + ".";
      json->Add(p + "connections", static_cast<uint64_t>(connections));
      json->Add(p + "cold_qps", cold.qps);
      json->Add(p + "warm_qps", warm.qps);
      json->Add(p + "warm_p99_rt_us", warm.p99_rt_us);
      json->Add(p + "srv_warm_qps", warm_srv.qps);
      json->Add(p + "srv_warm_p50_us", warm_srv.p50_us);
      json->Add(p + "srv_warm_p99_us", warm_srv.p99_us);
    }
    server.Shutdown();
  }
  std::printf("client-observed (one rt = %zu quer%s):\n", depth,
              depth == 1 ? "y" : "ies");
  if (csv) client_table.PrintCsv(std::cout);
  else client_table.Print(std::cout);
  std::printf("server-side aggregate (ServeStats):\n");
  if (csv) server_table.PrintCsv(std::cout);
  else server_table.Print(std::cout);

  // RELOAD under pipelined load at the top connection count: save the
  // index, replay the workload, roll the (identical) index in mid-pass.
  // Every in-flight and subsequent query must still be answered — the
  // acceptance criterion is zero dropped responses.
  const std::string index_path =
      StrFormat("/tmp/bench_serve_reload_%d.idx",
                static_cast<int>(::getpid()));
  if (Status s = SaveTcTreeToFile(tree, index_path); !s.ok()) {
    std::fprintf(stderr, "bench_serve: save index: %s\n",
                 s.ToString().c_str());
    return;
  }
  QueryServiceOptions reload_service_options;
  reload_service_options.tracing = tracing;
  QueryService service(tree, net.dictionary(), reload_service_options);
  TcpServerOptions options;
  options.num_threads = HardwareThreads();
  options.backlog = static_cast<int>(std::max<size_t>(64, max_connections));
  TcpServer server(service, options);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "bench_serve: %s\n", s.ToString().c_str());
    return;
  }
  PassResult reload_pass;
  std::thread pass_thread([&] {
    reload_pass = NetworkPass(server.port(), lines, max_connections, depth);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  size_t reloads = 0;
  {
    auto admin = Client::Connect("127.0.0.1", server.port());
    if (admin.ok()) {
      auto nodes = (*admin)->Reload(index_path);
      if (nodes.ok()) ++reloads;
      else
        std::fprintf(stderr, "bench_serve: reload: %s\n",
                     nodes.status().ToString().c_str());
      (void)(*admin)->Quit();
    }
  }
  pass_thread.join();
  server.Shutdown();
  std::remove(index_path.c_str());
  std::printf(
      "reload under load (%zu conns): %zu/%zu responses, %zu dropped, "
      "%zu mid-pass reload%s — %s\n",
      max_connections, reload_pass.answered, lines.size(),
      reload_pass.failed, reloads, reloads == 1 ? "" : "s",
      reload_pass.failed == 0 && reload_pass.answered == lines.size() &&
              reloads == 1
          ? "OK"
          : "FAIL");
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ParseScale(argc, argv);
  const bool csv = bench::ParseCsvFlag(argc, argv);
  const std::string json_path = bench::ParseJsonPath(argc, argv);
  bool net_mode = false;
  bool zipf_mode = false;
  bool shard_mode = false;
  bool churn_mode = false;
  bool reload_mode = false;
  bool tracing = true;
  size_t max_connections = 8;
  size_t depth = 16;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--net") == 0) net_mode = true;
    if (std::strcmp(argv[i], "--zipf") == 0) zipf_mode = true;
    if (std::strcmp(argv[i], "--shards") == 0) shard_mode = true;
    if (std::strcmp(argv[i], "--churn") == 0) churn_mode = true;
    if (std::strcmp(argv[i], "--reload") == 0) reload_mode = true;
    if (std::strcmp(argv[i], "--no-trace") == 0) tracing = false;
    if (std::strncmp(argv[i], "--connections=", 14) == 0) {
      max_connections = std::max(1, std::atoi(argv[i] + 14));
    }
    if (std::strncmp(argv[i], "--depth=", 8) == 0) {
      depth = std::max(1, std::atoi(argv[i] + 8));
    }
  }
  bench::PrintHeader(
      "Serve",
      churn_mode  ? "query p99 + freshness under mixed query/update load"
      : reload_mode ? "snapshot swap latency, text deserialize vs. mmap"
      : shard_mode ? "sharded scatter-gather vs. one tree, Zipf overlap"
      : zipf_mode ? "exact-only vs. subset-composable cache, Zipf overlap"
      : net_mode  ? "TcpServer throughput over loopback connections"
                  : "QueryService throughput, cold vs. warm cache",
      scale);
  if (!tracing) std::printf("(request tracing disabled: --no-trace)\n");

  bench::JsonWriter json;
  bench::JsonWriter* jw = json_path.empty() ? nullptr : &json;
  const size_t queries =
      static_cast<size_t>((net_mode ? 5000 : 20000) * std::max(0.05, scale));
  const size_t update_batches = static_cast<size_t>(
      std::max(8.0, 32.0 * std::max(0.05, scale)));
  if (churn_mode) {
    RunChurnDataset("BK-like", [&] { return bench::MakeBkLike(scale); },
                    queries, update_batches, csv, tracing, jw);
    RunChurnDataset("SYN", [&] { return bench::MakeSynLike(scale); },
                    queries, update_batches, csv, tracing, jw);
  }
  if (!churn_mode) {
    DatabaseNetwork bk = bench::MakeBkLike(scale);
    if (reload_mode) RunReloadDataset("BK-like", bk, csv, tracing, jw);
    else if (shard_mode) RunShardDataset("BK-like", bk, queries, csv,
                                         tracing, jw);
    else if (zipf_mode) RunZipfDataset("BK-like", bk, queries, csv, tracing,
                                       jw);
    else if (net_mode) RunNetworkDataset("BK-like", bk, queries,
                                         max_connections, depth, csv,
                                         tracing, jw);
    else RunDataset("BK-like", bk, queries, csv, tracing, jw);
  }
  if (!churn_mode) {
    DatabaseNetwork syn = bench::MakeSynLike(scale);
    if (reload_mode) RunReloadDataset("SYN", syn, csv, tracing, jw);
    else if (shard_mode) RunShardDataset("SYN", syn, queries, csv, tracing,
                                         jw);
    else if (zipf_mode) RunZipfDataset("SYN", syn, queries, csv, tracing, jw);
    else if (net_mode) RunNetworkDataset("SYN", syn, queries,
                                         max_connections, depth, csv,
                                         tracing, jw);
    else RunDataset("SYN", syn, queries, csv, tracing, jw);
  }
  if (jw != nullptr) {
    json.Add("scale", scale);
    if (!json.WriteToFile(json_path)) return 1;
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  if (reload_mode) {
    std::printf(
        "\nShape checks: the mmap swap is >= 10x faster than the text\n"
        "deserialize (it validates checksums and casts — no heap arena,\n"
        "no parse); map-only latency is effectively constant in tree\n"
        "size; extra mapped replicas cost ~0 marginal RSS because one\n"
        "page cache backs them all.\n");
  } else if (churn_mode) {
    std::printf(
        "\nShape checks: churn p99 stays within small multiples of base\n"
        "(updates rebuild off the read path; swaps are epoch-safe and\n"
        "invalidation is targeted, so the warm cache keeps absorbing\n"
        "traffic); freshness p50 is incremental-replay cost, well under\n"
        "a from-scratch build; sharded rows swap only the shards owning\n"
        "a changed root.\n");
  } else if (shard_mode) {
    std::printf(
        "\nShape checks: every shard count returns the same trusses\n"
        "(parity OK); single-owner queries ride the fast path, so mean\n"
        "fan-out stays well under the shard count; fresh q/s should hold\n"
        "within ~2x of unsharded — the merge is O(answer), not O(tree).\n");
  } else if (zipf_mode) {
    std::printf(
        "\nShape checks: where tree walks are expensive the work-aware\n"
        "gate engages and the composable cache must beat exact-only on\n"
        "fresh overlapping traffic with partial hits > 0 (shared cores\n"
        "reused as covers); where walks are already nearly free the gate\n"
        "keeps reuse off and the two modes must tie. Admission rejects\n"
        "bound the bytes sparse results may pin.\n");
  } else if (net_mode) {
    std::printf(
        "\nShape checks: q/s rises with --depth (pipelining amortizes\n"
        "the round trip) and holds as connections grow — idle\n"
        "connections park in epoll and cost an fd, not a thread; warm\n"
        "hit rate ~= workload repetition rate; the reload-under-load\n"
        "line must report 0 dropped.\n");
  } else {
    std::printf(
        "\nShape checks: warm q/s >> cold q/s (cache hits skip the tree\n"
        "walk); cold q/s grows with threads; warm hit rate ~= workload\n"
        "repetition rate (~20%% hot traffic + exact repeats).\n");
  }
  return 0;
}
