// Load generator for the concurrent serving layer (src/serve/).
//
// Builds a TC-Tree over the BK-like and SYN datasets, synthesizes a
// skewed query workload (random item subsets, a few hot queries repeated
// often — real traffic is never uniform), and measures QueryService
// throughput at increasing worker counts, cold cache vs. warm cache.
//
// With --net, the same workload additionally runs over loopback TCP:
// a TcpServer fronts the service and 1..--connections=C blocking
// `Client`s replay the queries as `alpha;item,...` protocol lines,
// measuring end-to-end (encode + socket + parse + serve) throughput and
// client-observed latency.
//
// Expected shapes: warm throughput is a large multiple of cold (a hit is
// one shard lookup instead of a tree traversal); cold throughput scales
// with threads until the tree walk saturates memory bandwidth; the warm
// hit rate matches the workload's repetition rate. Network throughput
// scales with connections (each is a serial request/response loop) until
// the service saturates; the per-query gap vs. in-process is the wire
// round trip.
#include <algorithm>
#include <atomic>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/tc_tree.h"
#include "serve/client.h"
#include "serve/line_protocol.h"
#include "serve/query_service.h"
#include "serve/tcp_server.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace tcf;

namespace {

/// A workload of `n` queries over the network's active items: 20% of the
/// queries are draws from a pool of 32 "hot" queries, the rest are
/// unique random subsets (1-4 items) with alphas in [0, 0.3).
std::vector<ServeQuery> MakeWorkload(const DatabaseNetwork& net, size_t n,
                                     uint64_t seed) {
  const std::vector<ItemId> items = net.ActiveItems();
  Rng rng(seed);
  auto random_query = [&] {
    const size_t len = 1 + rng.NextUint64(4);
    std::vector<ItemId> subset;
    for (size_t i = 0; i < len; ++i) {
      subset.push_back(items[rng.NextUint64(items.size())]);
    }
    return ServeQuery{Itemset(std::move(subset)),
                      0.1 * static_cast<double>(rng.NextUint64(4)) / 1.33};
  };
  std::vector<ServeQuery> hot;
  for (size_t i = 0; i < 32; ++i) hot.push_back(random_query());
  std::vector<ServeQuery> workload;
  workload.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBool(0.2)) {
      workload.push_back(hot[rng.NextUint64(hot.size())]);
    } else {
      workload.push_back(random_query());
    }
  }
  return workload;
}

void RunDataset(const char* name, const DatabaseNetwork& net, size_t queries,
                bool csv) {
  TcTree tree = TcTree::Build(net, {.num_threads = HardwareThreads(),
                                    .max_nodes = 1000000});
  std::printf("\n--- serve on %s (tree: %zu nodes, %zu queries/pass) ---\n",
              name, tree.num_nodes(), queries);
  const std::vector<ServeQuery> workload = MakeWorkload(net, queries, 17);

  TextTable table({"threads", "cold q/s", "cold p99(us)", "warm q/s",
                   "warm p99(us)", "warm/cold", "warm hit rate"});
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    // A fresh service per thread count: empty cache, cold first pass.
    QueryService service(tree, net.dictionary(), {.num_threads = threads});

    service.stats().Reset();
    service.ExecuteBatch(workload);
    const ServeReport cold = service.Report();

    service.stats().Reset();
    const ResultCacheStats before = service.cache_stats();
    service.ExecuteBatch(workload);
    const ServeReport warm = service.Report();
    ResultCacheStats delta = warm.cache;
    delta.hits -= before.hits;
    delta.misses -= before.misses;

    table.AddRow({TextTable::Num(static_cast<uint64_t>(threads)),
                  TextTable::Num(cold.qps, 0), TextTable::Num(cold.p99_us, 1),
                  TextTable::Num(warm.qps, 0), TextTable::Num(warm.p99_us, 1),
                  TextTable::Num(warm.qps / std::max(cold.qps, 1.0), 2),
                  TextTable::Num(delta.HitRate(), 3)});
  }
  if (csv) table.PrintCsv(std::cout);
  else table.Print(std::cout);
}

/// One timed network pass: `lines[i]` is sent by connection i % n; each
/// connection is a serial request/response loop on its own thread.
/// Returns {qps, p99_us} as observed by the clients.
std::pair<double, double> NetworkPass(uint16_t port,
                                      const std::vector<std::string>& lines,
                                      size_t connections) {
  std::vector<std::vector<double>> latencies(connections);
  std::vector<std::thread> threads;
  std::atomic<size_t> failed{0};
  WallTimer wall;
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      auto client = Client::Connect("127.0.0.1", port);
      if (!client.ok()) {
        std::fprintf(stderr, "bench_serve: connection %zu: %s\n", c,
                     client.status().ToString().c_str());
        ++failed;
        return;
      }
      for (size_t i = c; i < lines.size(); i += connections) {
        WallTimer t;
        auto trusses = (*client)->Query(lines[i]);
        if (!trusses.ok()) {
          std::fprintf(stderr, "bench_serve: connection %zu: %s\n", c,
                       trusses.status().ToString().c_str());
          ++failed;
          return;
        }
        latencies[c].push_back(t.Micros());
      }
      (void)(*client)->Quit();
    });
  }
  for (auto& th : threads) th.join();
  const double seconds = wall.Seconds();
  if (failed > 0) {
    // Partial passes would print plausible but wrong q/s; say so loudly.
    std::fprintf(stderr,
                 "bench_serve: %zu/%zu connections failed; this pass's "
                 "numbers cover only the surviving traffic\n",
                 failed.load(), connections);
  }

  std::vector<double> all;
  for (const auto& l : latencies) all.insert(all.end(), l.begin(), l.end());
  if (all.empty()) return {0, 0};
  std::sort(all.begin(), all.end());
  const double qps =
      seconds > 0 ? static_cast<double>(all.size()) / seconds : 0;
  return {qps, all[std::min(all.size() - 1,
                            static_cast<size_t>(0.99 * (all.size() - 1) +
                                                0.5))]};
}

/// Network mode: the same skewed workload, replayed as protocol lines
/// over loopback TCP at increasing connection counts.
void RunNetworkDataset(const char* name, const DatabaseNetwork& net,
                       size_t queries, size_t max_connections, bool csv) {
  TcTree tree = TcTree::Build(net, {.num_threads = HardwareThreads(),
                                    .max_nodes = 1000000});
  std::printf(
      "\n--- serve --net on %s (tree: %zu nodes, %zu queries/pass) ---\n",
      name, tree.num_nodes(), queries);
  const std::vector<ServeQuery> workload = MakeWorkload(net, queries, 17);
  std::vector<std::string> lines;
  lines.reserve(workload.size());
  for (const ServeQuery& q : workload) {
    lines.push_back(EncodeQueryLine(net.dictionary(), q));
  }

  TextTable table({"conns", "cold q/s", "cold p99(us)", "warm q/s",
                   "warm p99(us)", "warm hit rate", "KiB in", "KiB out"});
  for (size_t connections = 1; connections <= max_connections;
       connections *= 2) {
    QueryService service(tree, net.dictionary(), {});
    TcpServerOptions options;
    options.num_threads = connections;
    TcpServer server(service, options);
    if (Status s = server.Start(); !s.ok()) {
      std::fprintf(stderr, "bench_serve: %s\n", s.ToString().c_str());
      return;
    }

    const auto cold = NetworkPass(server.port(), lines, connections);
    const ResultCacheStats before = service.cache_stats();
    const auto warm = NetworkPass(server.port(), lines, connections);
    ResultCacheStats delta = service.cache_stats();
    delta.hits -= before.hits;
    delta.misses -= before.misses;

    const ServeReport report = service.Report();
    table.AddRow({TextTable::Num(static_cast<uint64_t>(connections)),
                  TextTable::Num(cold.first, 0),
                  TextTable::Num(cold.second, 1),
                  TextTable::Num(warm.first, 0),
                  TextTable::Num(warm.second, 1),
                  TextTable::Num(delta.HitRate(), 3),
                  TextTable::Num(report.bytes_in / 1024.0, 1),
                  TextTable::Num(report.bytes_out / 1024.0, 1)});
    server.Shutdown();
  }
  if (csv) table.PrintCsv(std::cout);
  else table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ParseScale(argc, argv);
  const bool csv = bench::ParseCsvFlag(argc, argv);
  bool net_mode = false;
  size_t max_connections = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--net") == 0) net_mode = true;
    if (std::strncmp(argv[i], "--connections=", 14) == 0) {
      max_connections = std::max(1, std::atoi(argv[i] + 14));
    }
  }
  bench::PrintHeader("Serve",
                     net_mode
                         ? "TcpServer throughput over loopback connections"
                         : "QueryService throughput, cold vs. warm cache",
                     scale);

  const size_t queries =
      static_cast<size_t>((net_mode ? 5000 : 20000) * std::max(0.05, scale));
  {
    DatabaseNetwork bk = bench::MakeBkLike(scale);
    if (net_mode) RunNetworkDataset("BK-like", bk, queries, max_connections,
                                    csv);
    else RunDataset("BK-like", bk, queries, csv);
  }
  {
    DatabaseNetwork syn = bench::MakeSynLike(scale);
    if (net_mode) RunNetworkDataset("SYN", syn, queries, max_connections,
                                    csv);
    else RunDataset("SYN", syn, queries, csv);
  }

  if (net_mode) {
    std::printf(
        "\nShape checks: q/s grows with connections (each is a serial\n"
        "request/response loop); warm hit rate ~= workload repetition\n"
        "rate; p99 gap vs. the in-process run is the loopback round\n"
        "trip + encode/parse.\n");
  } else {
    std::printf(
        "\nShape checks: warm q/s >> cold q/s (cache hits skip the tree\n"
        "walk); cold q/s grows with threads; warm hit rate ~= workload\n"
        "repetition rate (~20%% hot traffic + exact repeats).\n");
  }
  return 0;
}
