// Reproduces Figure 4: scalability of TCS/TCFA/TCFI with the number of
// BFS-sampled edges, at the worst case alpha = 0.
//
// Reports Time, NP, NV/NP and NE/NP per sample size. Like the paper —
// which stopped reporting TCS and TCFA once they exceeded one day — a
// per-point time budget (default 15 s, scaled) retires a method once it
// blows the budget; later points print "-".
//
// Expected shapes (paper §7.2): all costs grow with edges; TCFI grows
// slowest (>= 2 orders faster at the top of the sweep); NV/NP and NE/NP
// stay small => maximal pattern trusses are small local subgraphs.
#include <functional>
#include <iostream>

#include "bench_common.h"
#include "core/tcfa.h"
#include "core/tcfi.h"
#include "core/tcs.h"
#include "net/sampler.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

using namespace tcf;

namespace {

struct Method {
  std::string name;
  std::function<MiningResult(const DatabaseNetwork&)> run;
  bool retired = false;
};

void RunDataset(const char* name, const DatabaseNetwork& full,
                const std::vector<size_t>& edge_counts, double budget_s,
                bool csv) {
  std::printf("\n--- %s (full: %zu edges) ---\n", name, full.num_edges());
  std::vector<Method> methods;
  methods.push_back({"TCS(eps=0.1)",
                     [](const DatabaseNetwork& n) {
                       return RunTcs(n, {.alpha = 0.0, .epsilon = 0.1});
                     },
                     false});
  methods.push_back({"TCS(eps=0.2)",
                     [](const DatabaseNetwork& n) {
                       return RunTcs(n, {.alpha = 0.0, .epsilon = 0.2});
                     },
                     false});
  methods.push_back({"TCFA",
                     [](const DatabaseNetwork& n) {
                       return RunTcfa(n, {.alpha = 0.0});
                     },
                     false});
  methods.push_back({"TCFI",
                     [](const DatabaseNetwork& n) {
                       return RunTcfi(n, {.alpha = 0.0});
                     },
                     false});

  TextTable table({"#edges", "method", "time(s)", "NP", "NV/NP", "NE/NP"});
  for (size_t m : edge_counts) {
    if (m > full.num_edges()) continue;
    Rng rng(7);
    auto sampled = SampleByBfs(full, m, rng);
    if (!sampled.ok()) continue;
    for (Method& method : methods) {
      if (method.retired) {
        table.AddRow({TextTable::Num(static_cast<uint64_t>(m)), method.name,
                      "-", "-", "-", "-"});
        continue;
      }
      WallTimer t;
      MiningResult r = method.run(*sampled);
      const double secs = t.Seconds();
      const double np = static_cast<double>(r.NumPatterns());
      table.AddRow(
          {TextTable::Num(static_cast<uint64_t>(m)), method.name,
           TextTable::Num(secs, 3), TextTable::Num(r.NumPatterns()),
           np == 0 ? "0" : TextTable::Num(static_cast<double>(r.NumVertices()) / np, 2),
           np == 0 ? "0" : TextTable::Num(static_cast<double>(r.NumEdges()) / np, 2)});
      if (secs > budget_s) {
        method.retired = true;  // the paper's "stopped after one day"
      }
    }
  }
  if (csv) table.PrintCsv(std::cout);
  else table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ParseScale(argc, argv);
  const bool csv = bench::ParseCsvFlag(argc, argv);
  bench::PrintHeader("Figure 4", "scalability in #sampled edges (alpha=0)",
                     scale);
  const double budget_s = 15.0 * scale;

  std::vector<size_t> sweep;
  for (double base : {500.0, 1000.0, 2000.0, 4000.0, 8000.0, 16000.0}) {
    sweep.push_back(static_cast<size_t>(base * scale));
  }

  {
    DatabaseNetwork bk = bench::MakeBkLike(scale);
    RunDataset("BK-like", bk, sweep, budget_s, csv);
  }
  {
    DatabaseNetwork gw = bench::MakeGwLike(scale);
    RunDataset("GW-like", gw, sweep, budget_s, csv);
  }
  {
    CoauthorNetwork am = bench::MakeAminerLike(scale);
    RunDataset("AMINER-like", am.network, sweep, budget_s, csv);
  }

  std::printf(
      "\nShape checks vs. paper Fig. 4: every method grows with #edges;\n"
      "TCFI grows slowest; NV/NP and NE/NP stay small (trusses are small\n"
      "local subgraphs), which is what makes intersection pruning work.\n");
  return 0;
}
