// Reproduces Figure 5: TC-Tree query performance in two modes.
//
//  QBA (query by alpha, Fig. 5(a)-(d)): q = S, alpha_q swept from 0 in
//  steps of 0.1 until the answer set becomes empty. Reports average
//  Query Time and Retrieved Nodes (RN) per alpha.
//
//  QBP (query by pattern, Fig. 5(e)-(h)): alpha_q = 0, query patterns
//  sampled from each tree layer (up to 1000 per layer, as in the paper).
//  Reports average Query Time and RN per pattern length.
//
// Expected shapes: QBA time and RN fall as alpha grows; QBP time and RN
// grow with pattern length; retrieval stays around a microsecond per
// node (the paper retrieves 1M trusses in ~1 s).
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/tc_tree.h"
#include "core/tc_tree_query.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace tcf;

namespace {

Itemset EveryItem(const DatabaseNetwork& net) {
  return Itemset(net.ActiveItems());
}

void Qba(const char* name, const DatabaseNetwork& net, const TcTree& tree,
         size_t repeats, bool csv) {
  std::printf("\n--- QBA on %s (tree: %zu nodes) ---\n", name,
              tree.num_nodes());
  const Itemset q = EveryItem(net);
  TextTable table({"alpha_q", "avg query time (s)", "retrieved nodes"});
  const TcTreeQueryOptions opts{.materialize_vertices = false};
  for (double alpha = 0.0;; alpha += 0.1) {
    uint64_t rn = 0;
    WallTimer t;
    for (size_t i = 0; i < repeats; ++i) {
      TcTreeQueryResult r = QueryTcTree(tree, q, alpha, opts);
      rn = r.retrieved_nodes;
    }
    const double avg = t.Seconds() / static_cast<double>(repeats);
    table.AddRow({TextTable::Num(alpha, 1), TextTable::Sci(avg, 2),
                  TextTable::Num(rn)});
    if (rn == 0) break;
    if (alpha > 200.0) break;  // safety rail
  }
  if (csv) table.PrintCsv(std::cout);
  else table.Print(std::cout);
}

void Qbp(const char* name, const TcTree& tree, size_t per_layer,
         size_t repeats, bool csv) {
  std::printf("\n--- QBP on %s ---\n", name);
  // Collect node patterns per depth (tree layer).
  std::vector<std::vector<Itemset>> by_depth;
  for (TcTree::NodeId id = 1; id <= tree.num_nodes(); ++id) {
    Itemset p = tree.PatternOf(id);
    if (by_depth.size() < p.size()) by_depth.resize(p.size());
    by_depth[p.size() - 1].push_back(std::move(p));
  }
  Rng rng(99);
  TextTable table({"pattern length", "#queries", "avg query time (s)",
                   "avg retrieved nodes"});
  const TcTreeQueryOptions opts{.materialize_vertices = false};
  for (size_t len = 1; len <= by_depth.size(); ++len) {
    auto& pool = by_depth[len - 1];
    if (pool.empty()) continue;
    rng.Shuffle(pool);
    const size_t n = std::min(per_layer, pool.size());
    double total_s = 0;
    uint64_t total_rn = 0;
    for (size_t i = 0; i < n; ++i) {
      WallTimer t;
      uint64_t rn = 0;
      for (size_t rep = 0; rep < repeats; ++rep) {
        rn = QueryTcTree(tree, pool[i], 0.0, opts).retrieved_nodes;
      }
      total_s += t.Seconds() / static_cast<double>(repeats);
      total_rn += rn;
    }
    table.AddRow({TextTable::Num(static_cast<uint64_t>(len)),
                  TextTable::Num(static_cast<uint64_t>(n)),
                  TextTable::Sci(total_s / static_cast<double>(n), 2),
                  TextTable::Num(
                      static_cast<double>(total_rn) / static_cast<double>(n),
                      1)});
  }
  if (csv) table.PrintCsv(std::cout);
  else table.Print(std::cout);
}

void RunDataset(const char* name, const DatabaseNetwork& net, bool csv) {
  TcTree tree = TcTree::Build(net, {.num_threads = HardwareThreads(),
                                    .max_nodes = 1000000});
  if (tree.build_stats().truncated) {
    std::printf("(note: %s tree truncated at the 1M-node budget)\n", name);
  }
  // Millions-of-nodes trees answer a full QBA in ~1 s (that is the
  // paper's headline), so fewer repeats suffice for a stable average.
  const size_t repeats = tree.num_nodes() > 200000 ? 3 : 20;
  Qba(name, net, tree, repeats, csv);
  Qbp(name, tree, /*per_layer=*/200, repeats, csv);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ParseScale(argc, argv);
  const bool csv = bench::ParseCsvFlag(argc, argv);
  bench::PrintHeader("Figure 5", "TC-Tree query performance (QBA & QBP)",
                     scale);

  {
    DatabaseNetwork bk = bench::MakeBkLike(scale);
    RunDataset("BK-like", bk, csv);
  }
  {
    DatabaseNetwork gw = bench::MakeGwLike(scale);
    RunDataset("GW-like", gw, csv);
  }
  {
    CoauthorNetwork am = bench::MakeAminerLike(scale);
    RunDataset("AMINER-like", am.network, csv);
  }
  {
    DatabaseNetwork syn = bench::MakeSynLike(scale);
    RunDataset("SYN", syn, csv);
  }

  std::printf(
      "\nShape checks vs. paper Fig. 5: QBA time/RN fall with alpha_q;\n"
      "QBP time/RN grow with pattern length; per-node retrieval cost is\n"
      "~microseconds (paper: 1M trusses in ~1 s).\n");
  return 0;
}
