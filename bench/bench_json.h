// Flat JSON emission for the benchmark harnesses: `--json=FILE` writes
// one object of `"metric": value` pairs next to the human-readable
// tables, so nightly CI can archive a run and `tools/bench_diff.py` can
// diff it against the checked-in baselines in bench/baselines/.
//
// Deliberately flat (no nesting): a diff tool over `key -> number` needs
// no schema, and dataset/mode context lives in the key
// ("serve.bk_like.warm_qps"). Keys keep insertion order so a run diffs
// cleanly under `git diff` too.
#ifndef TCF_BENCH_BENCH_JSON_H_
#define TCF_BENCH_BENCH_JSON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "util/string_util.h"

namespace tcf {
namespace bench {

/// Accumulates `key -> value` pairs and renders them as one JSON object.
/// Values are numbers (doubles get shortest-round-trip %.17g, non-finite
/// doubles become null — JSON has no NaN) or strings (minimally
/// escaped). Re-adding a key appends; the diff tool takes the last
/// occurrence, but benches should just not do that.
class JsonWriter {
 public:
  void Add(const std::string& key, double value) {
    if (!std::isfinite(value)) {
      fields_.emplace_back(key, "null");
      return;
    }
    fields_.emplace_back(key, StrFormat("%.17g", value));
  }

  void Add(const std::string& key, uint64_t value) {
    fields_.emplace_back(
        key, StrFormat("%llu", static_cast<unsigned long long>(value)));
  }

  void Add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, Quote(value));
  }

  bool empty() const { return fields_.empty(); }

  std::string ToString() const {
    std::string out = "{\n";
    for (size_t i = 0; i < fields_.size(); ++i) {
      out += "  ";
      out += Quote(fields_[i].first);
      out += ": ";
      out += fields_[i].second;
      if (i + 1 < fields_.size()) out += ',';
      out += '\n';
    }
    out += "}\n";
    return out;
  }

  /// Writes the object to `path` (truncating). Returns false — after
  /// printing a diagnosis to stderr — when the file cannot be written;
  /// benches treat that as a run failure so CI never archives a
  /// half-written artifact.
  bool WriteToFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write --json file %s\n",
                   path.c_str());
      return false;
    }
    const std::string text = ToString();
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) ==
                    text.size();
    if (std::fclose(f) != 0 || !ok) {
      std::fprintf(stderr, "bench: short write to --json file %s\n",
                   path.c_str());
      return false;
    }
    return true;
  }

 private:
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            out += StrFormat("\\u%04x", c);
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// `--json=FILE` from argv, or "" when absent.
inline std::string ParseJsonPath(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) return argv[i] + 7;
  }
  return "";
}

/// Key-safe dataset slug: "BK-like" -> "bk_like". Keys are dotted paths
/// ("serve.bk_like.warm_qps"), so everything outside [a-z0-9] folds to
/// '_' to keep one separator meaning one thing.
inline std::string KeySlug(const std::string& name) {
  std::string slug;
  slug.reserve(name.size());
  for (char c : name) {
    if (c >= 'A' && c <= 'Z') slug += static_cast<char>(c - 'A' + 'a');
    else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) slug += c;
    else slug += '_';
  }
  return slug;
}

}  // namespace bench
}  // namespace tcf

#endif  // TCF_BENCH_BENCH_JSON_H_
