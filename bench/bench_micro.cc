// Google-benchmark microbenchmarks for the hot paths: triangle
// enumeration, MPTD peeling, tid-list frequency queries, decomposition,
// reconstruction (Eq. 1) and TC-Tree queries.
#include <benchmark/benchmark.h>

#include <functional>

#include "bench_common.h"
#include "core/decomposition.h"
#include "core/mptd.h"
#include "core/tc_tree.h"
#include "core/tc_tree_query.h"
#include "ext/edge_mptd.h"
#include "graph/random_graphs.h"
#include "graph/triangles.h"
#include "net/theme_network.h"
#include "serve/query_service.h"
#include "util/rng.h"

namespace tcf {
namespace {

// Shared fixtures, built once.
const DatabaseNetwork& BkNet() {
  static DatabaseNetwork* net =
      new DatabaseNetwork(bench::MakeBkLike(0.5));
  return *net;
}

const TcTree& BkTree() {
  static TcTree* tree = new TcTree(TcTree::Build(BkNet()));
  return *tree;
}

void BM_TriangleCount(benchmark::State& state) {
  Rng rng(1);
  Graph g = ErdosRenyi(static_cast<size_t>(state.range(0)),
                       static_cast<size_t>(state.range(0)) * 8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountTriangles(g));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_edges()));
}
BENCHMARK(BM_TriangleCount)->Arg(256)->Arg(1024)->Arg(4096);

// Before/after pair for the ForEachTriangle devirtualization: the
// template version inlines the callback into the sorted-merge loop; the
// "std::function" row re-wraps the same lambda the way the pre-template
// API forced every caller to, paying one indirect call per triangle.
void BM_EdgeSupportTemplate(benchmark::State& state) {
  Rng rng(1);
  Graph g = ErdosRenyi(1024, 1024 * 8, rng);
  std::vector<uint8_t> alive(g.num_edges(), 1);
  for (auto _ : state) {
    uint64_t total = 0;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      ForEachTriangle(g, e, &alive,
                      [&](VertexId, EdgeId, EdgeId) { ++total; });
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_edges()));
}
BENCHMARK(BM_EdgeSupportTemplate);

void BM_EdgeSupportStdFunction(benchmark::State& state) {
  Rng rng(1);
  Graph g = ErdosRenyi(1024, 1024 * 8, rng);
  std::vector<uint8_t> alive(g.num_edges(), 1);
  for (auto _ : state) {
    uint64_t total = 0;
    const std::function<void(VertexId, EdgeId, EdgeId)> fn =
        [&](VertexId, EdgeId, EdgeId) { ++total; };
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      ForEachTriangle(g, e, &alive, fn);
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_edges()));
}
BENCHMARK(BM_EdgeSupportStdFunction);

void BM_ThemeNetworkInduction(benchmark::State& state) {
  const DatabaseNetwork& net = BkNet();
  const auto items = net.ActiveItems();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        InduceThemeNetwork(net, Itemset::Single(items[i % items.size()])));
    ++i;
  }
}
BENCHMARK(BM_ThemeNetworkInduction);

void BM_Mptd(benchmark::State& state) {
  const DatabaseNetwork& net = BkNet();
  const auto items = net.ActiveItems();
  // Pick the densest theme network for a stable workload.
  ThemeNetwork biggest;
  for (ItemId item : items) {
    ThemeNetwork tn = InduceThemeNetwork(net, Itemset::Single(item));
    if (tn.num_edges() > biggest.num_edges()) biggest = std::move(tn);
  }
  const double alpha = static_cast<double>(state.range(0)) / 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Mptd(biggest, alpha));
  }
  state.SetLabel("theme edges=" + std::to_string(biggest.num_edges()));
}
BENCHMARK(BM_Mptd)->Arg(0)->Arg(5)->Arg(20);

void BM_FrequencyTidList(benchmark::State& state) {
  const DatabaseNetwork& net = BkNet();
  const auto items = net.ActiveItems();
  Rng rng(3);
  Itemset p({items[0], items[std::min<size_t>(1, items.size() - 1)]});
  VertexId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Frequency(v, p));
    v = static_cast<VertexId>((v + 1) % net.num_vertices());
  }
}
BENCHMARK(BM_FrequencyTidList);

void BM_FrequencyScan(benchmark::State& state) {
  const DatabaseNetwork& net = BkNet();
  const auto items = net.ActiveItems();
  Itemset p({items[0], items[std::min<size_t>(1, items.size() - 1)]});
  VertexId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.db(v).Frequency(p));
    v = static_cast<VertexId>((v + 1) % net.num_vertices());
  }
}
BENCHMARK(BM_FrequencyScan);

void BM_Decomposition(benchmark::State& state) {
  const DatabaseNetwork& net = BkNet();
  const auto items = net.ActiveItems();
  ThemeNetwork biggest;
  for (ItemId item : items) {
    ThemeNetwork tn = InduceThemeNetwork(net, Itemset::Single(item));
    if (tn.num_edges() > biggest.num_edges()) biggest = std::move(tn);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(TrussDecomposition::FromThemeNetwork(biggest));
  }
  state.SetLabel("theme edges=" + std::to_string(biggest.num_edges()));
}
BENCHMARK(BM_Decomposition);

// The TC-Tree build's per-candidate shape: decompose many theme networks
// with one reusable peeling workspace (high-water-sized buffers) vs a
// fresh ThemePeeler allocation set per call.
void BM_DecompositionReusedWorkspace(benchmark::State& state) {
  const DatabaseNetwork& net = BkNet();
  const auto items = net.ActiveItems();
  ThemeNetwork biggest;
  for (ItemId item : items) {
    ThemeNetwork tn = InduceThemeNetwork(net, Itemset::Single(item));
    if (tn.num_edges() > biggest.num_edges()) biggest = std::move(tn);
  }
  ThemePeeler workspace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TrussDecomposition::FromThemeNetwork(biggest, &workspace));
  }
  state.SetLabel("theme edges=" + std::to_string(biggest.num_edges()));
}
BENCHMARK(BM_DecompositionReusedWorkspace);

void BM_ReconstructTruss(benchmark::State& state) {
  const DatabaseNetwork& net = BkNet();
  const auto items = net.ActiveItems();
  ThemeNetwork biggest;
  for (ItemId item : items) {
    ThemeNetwork tn = InduceThemeNetwork(net, Itemset::Single(item));
    if (tn.num_edges() > biggest.num_edges()) biggest = std::move(tn);
  }
  TrussDecomposition d = TrussDecomposition::FromThemeNetwork(biggest);
  const CohesionValue mid = d.max_alpha() / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.EdgesAtAlphaQ(mid));
  }
}
BENCHMARK(BM_ReconstructTruss);

void BM_TcTreeQba(benchmark::State& state) {
  const DatabaseNetwork& net = BkNet();
  const TcTree& tree = BkTree();
  Itemset everything(net.ActiveItems());
  const double alpha = static_cast<double>(state.range(0)) / 10.0;
  const TcTreeQueryOptions opts{.materialize_vertices = false};
  uint64_t rn = 0;
  for (auto _ : state) {
    auto r = QueryTcTree(tree, everything, alpha, opts);
    rn = r.retrieved_nodes;
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("retrieved=" + std::to_string(rn));
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rn));
}
BENCHMARK(BM_TcTreeQba)->Arg(0)->Arg(5);

void BM_TcTreeQbp(benchmark::State& state) {
  const TcTree& tree = BkTree();
  // A mid-depth pattern.
  Itemset q;
  for (TcTree::NodeId id = 1; id <= tree.num_nodes(); ++id) {
    Itemset p = tree.PatternOf(id);
    if (p.size() > q.size()) q = std::move(p);
  }
  const TcTreeQueryOptions opts{.materialize_vertices = false};
  for (auto _ : state) {
    benchmark::DoNotOptimize(QueryTcTree(tree, q, 0.0, opts));
  }
  state.SetLabel("pattern len=" + std::to_string(q.size()));
}
BENCHMARK(BM_TcTreeQbp);

void BM_EdgeMptd(benchmark::State& state) {
  // Edge-network peeling (§8 extension): a dense random edge network
  // with one shared item.
  Rng rng(17);
  Graph g = ErdosRenyi(200, 1600, rng);
  EdgeThemeNetwork tn;
  tn.pattern = Itemset({0});
  tn.edges = g.edges();
  for (size_t e = 0; e < g.num_edges(); ++e) {
    tn.frequencies.push_back(0.1 + rng.NextDouble() * 0.9);
  }
  const double alpha = static_cast<double>(state.range(0)) / 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EdgeMptd(tn, alpha));
  }
  state.SetLabel("edges=" + std::to_string(tn.edges.size()));
}
BENCHMARK(BM_EdgeMptd)->Arg(0)->Arg(10);

// The tracing-overhead guard: the same QueryService hot path with
// request tracing on (stage spans + histograms + slow-ring check, the
// PR-6 default) and off (relaxed counters only). docs/performance.md
// quotes this pair; the on/off gap is the observability tax and must
// stay within a couple percent. range(0) picks the cache regime: 0
// repeats one query (every iteration a cache hit — the worst case for
// relative overhead, nothing to hide the spans behind), 1 cycles
// alphas so iterations alternate hit/miss.
void RunQueryServiceBench(benchmark::State& state, bool tracing) {
  const DatabaseNetwork& net = BkNet();
  const TcTree& tree = BkTree();
  QueryServiceOptions options;
  options.num_threads = 1;
  options.tracing = tracing;
  QueryService service(tree, net.dictionary(), options);
  const auto items = net.ActiveItems();
  ServeQuery query{Itemset({items[0], items[1 % items.size()]}), 0.0};
  const bool vary_alpha = state.range(0) != 0;
  uint64_t i = 0;
  for (auto _ : state) {
    query.alpha = vary_alpha ? 0.001 * static_cast<double>(i % 64) : 0.0;
    benchmark::DoNotOptimize(service.Execute(query));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_QueryServiceTraced(benchmark::State& state) {
  RunQueryServiceBench(state, /*tracing=*/true);
}
BENCHMARK(BM_QueryServiceTraced)->Arg(0)->Arg(1);

void BM_QueryServiceUntraced(benchmark::State& state) {
  RunQueryServiceBench(state, /*tracing=*/false);
}
BENCHMARK(BM_QueryServiceUntraced)->Arg(0)->Arg(1);

void BM_ItemsetUnion(benchmark::State& state) {
  Itemset a({1, 5, 9, 12, 40});
  Itemset b({2, 5, 11, 12, 77});
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Union(b));
  }
}
BENCHMARK(BM_ItemsetUnion);

void BM_IntersectEdgeSets(benchmark::State& state) {
  Rng rng(9);
  std::vector<Edge> a, b;
  for (int i = 0; i < state.range(0); ++i) {
    a.push_back(MakeEdge(static_cast<VertexId>(rng.NextUint64(1000)),
                         static_cast<VertexId>(rng.NextUint64(1000) + 1000)));
    b.push_back(MakeEdge(static_cast<VertexId>(rng.NextUint64(1000)),
                         static_cast<VertexId>(rng.NextUint64(1000) + 1000)));
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectEdgeSets(a, b));
  }
}
BENCHMARK(BM_IntersectEdgeSets)->Arg(100)->Arg(10000);

}  // namespace
}  // namespace tcf

BENCHMARK_MAIN();
