// Reproduces the §7.4 case study (Table 4 + Figure 6): meaningful,
// arbitrarily-overlapping scholar communities with keyword themes.
//
// The offline substitute plants research groups with known members and
// themes (including hub authors active in several groups, mirroring the
// multi-community scholars of Fig. 6), builds a TC-Tree, and then
//  (1) prints Fig.-6-style communities for the longest themes found,
//  (2) shows the Thm.-5.1 narrowing effect (adding a keyword shrinks the
//      community, as Fig. 6(a)->(b)),
//  (3) reports precision/recall of planted-group recovery — possible
//      here because, unlike the paper, we know the ground truth.
#include <algorithm>
#include <iostream>
#include <map>
#include <set>

#include "bench_common.h"
#include "core/communities.h"
#include "core/tc_tree.h"
#include "core/tc_tree_query.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace tcf;

namespace {

std::string AuthorName(VertexId v) { return "author" + std::to_string(v); }

void PrintCommunity(const DatabaseNetwork& net, const ThemeCommunity& c) {
  std::printf("  theme %s: %zu scholars {",
              net.dictionary().Render(c.theme).c_str(), c.vertices.size());
  for (size_t i = 0; i < c.vertices.size(); ++i) {
    if (i) std::printf(", ");
    if (i == 8 && c.vertices.size() > 10) {
      std::printf("... +%zu more", c.vertices.size() - i);
      break;
    }
    std::printf("%s", AuthorName(c.vertices[i]).c_str());
  }
  std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ParseScale(argc, argv);
  bench::PrintHeader("Table 4 / Figure 6",
                     "case study: overlapping scholar communities", scale);

  CoauthorNetwork cn = bench::MakeAminerLike(scale);
  const DatabaseNetwork& net = cn.network;
  std::printf("co-author network: %zu authors, %zu edges, %zu planted groups\n",
              net.num_vertices(), net.num_edges(), cn.groups.size());

  WallTimer t;
  TcTree tree = TcTree::Build(net, {.num_threads = HardwareThreads()});
  std::printf("TC-Tree: %zu nodes in %.2f s\n\n", tree.num_nodes(),
              t.Seconds());

  // ----- (1) Fig. 6-style output: communities of the longest themes. ---
  std::printf("Discovered theme communities (deepest themes first):\n");
  std::vector<TcTree::NodeId> nodes;
  for (TcTree::NodeId id = 1; id <= tree.num_nodes(); ++id) {
    nodes.push_back(id);
  }
  std::stable_sort(nodes.begin(), nodes.end(),
                   [&](TcTree::NodeId a, TcTree::NodeId b) {
                     return tree.PatternOf(a).size() >
                            tree.PatternOf(b).size();
                   });
  size_t shown = 0;
  for (TcTree::NodeId id : nodes) {
    if (shown >= 6) break;
    PatternTruss truss = tree.node(id).decomposition.TrussAtAlpha(0.0);
    truss.pattern = tree.PatternOf(id);
    auto communities = ExtractThemeCommunities(truss);
    for (const auto& c : communities) {
      if (c.vertices.size() < 4) continue;
      PrintCommunity(net, c);
      if (++shown >= 6) break;
    }
  }

  // ----- (2) Thm.-5.1 narrowing: Fig. 6(a) -> 6(b). --------------------
  std::printf("\nNarrowing a theme (Thm. 5.1, as Fig. 6(a)->(b)):\n");
  bool shown_narrowing = false;
  for (TcTree::NodeId id : nodes) {
    const Itemset p = tree.PatternOf(id);
    if (p.size() < 2) continue;
    const TcTree::NodeId parent = tree.node(id).parent;
    if (parent == TcTree::kRoot) continue;
    PatternTruss wide = tree.node(parent).decomposition.TrussAtAlpha(0.0);
    PatternTruss narrow = tree.node(id).decomposition.TrussAtAlpha(0.0);
    if (narrow.num_vertices() < wide.num_vertices() &&
        narrow.num_vertices() >= 4) {
      std::printf("  %s: %zu scholars  ->  %s: %zu scholars\n",
                  net.dictionary().Render(tree.PatternOf(parent)).c_str(),
                  wide.num_vertices(),
                  net.dictionary().Render(p).c_str(),
                  narrow.num_vertices());
      shown_narrowing = true;
      break;
    }
  }
  if (!shown_narrowing) std::printf("  (no strict narrowing pair found)\n");

  // ----- (3) Planted-group recovery. -----------------------------------
  std::printf("\nPlanted-group recovery (ground truth known):\n");
  TextTable table({"group", "theme", "members", "recovered", "precision",
                   "recall"});
  double sum_precision = 0, sum_recall = 0;
  size_t evaluated = 0;
  for (size_t g = 0; g < cn.groups.size(); ++g) {
    const PlantedGroup& group = cn.groups[g];
    TcTreeQueryResult r = QueryTcTree(tree, group.theme, 0.0);
    const PatternTruss* best = nullptr;
    for (const auto& truss : r.trusses) {
      if (truss.pattern == group.theme) best = &truss;
    }
    std::set<VertexId> members(group.members.begin(), group.members.end());
    size_t hit = 0, got = 0;
    if (best != nullptr) {
      got = best->num_vertices();
      for (VertexId v : best->vertices) {
        if (members.count(v)) ++hit;
      }
    }
    const double precision =
        got == 0 ? 0.0 : static_cast<double>(hit) / static_cast<double>(got);
    const double recall =
        static_cast<double>(hit) / static_cast<double>(members.size());
    sum_precision += precision;
    sum_recall += recall;
    ++evaluated;
    if (g < 10) {
      table.AddRow({TextTable::Num(static_cast<uint64_t>(g)),
                    net.dictionary().Render(group.theme),
                    TextTable::Num(static_cast<uint64_t>(members.size())),
                    TextTable::Num(static_cast<uint64_t>(got)),
                    TextTable::Num(precision, 2),
                    TextTable::Num(recall, 2)});
    }
  }
  table.Print(std::cout);
  std::printf("macro-averaged over %zu groups: precision=%.3f recall=%.3f\n",
              evaluated, sum_precision / static_cast<double>(evaluated),
              sum_recall / static_cast<double>(evaluated));

  // ----- Overlap evidence (Fig. 6(e)-(f)). ------------------------------
  std::map<VertexId, int> group_count;
  for (const auto& g : cn.groups) {
    for (VertexId m : g.members) ++group_count[m];
  }
  size_t hubs = 0;
  for (const auto& [v, c] : group_count) {
    if (c > 1) ++hubs;
  }
  std::printf(
      "\n%zu authors belong to 2+ planted groups (the Fig.-6 'Jiawei Han /\n"
      "Jian Pei' pattern); their communities overlap across themes.\n",
      hubs);
  return 0;
}
