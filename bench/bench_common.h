#ifndef TCF_BENCH_BENCH_COMMON_H_
#define TCF_BENCH_BENCH_COMMON_H_

#include <string>

#include "gen/checkin_generator.h"
#include "gen/coauthor_generator.h"
#include "gen/syn_generator.h"
#include "net/database_network.h"

namespace tcf {
namespace bench {

/// \brief Shared workload construction for the paper-reproduction
/// harnesses.
///
/// The paper evaluates on BK, GW, AMINER and SYN (Table 2). The offline
/// substitutes (see DESIGN.md) are generated at a default scale that
/// keeps the full harness suite running in minutes on one core; pass
/// `--scale=S` (or set TCF_SCALE) to grow every dataset by the factor S.
/// `--quick` shrinks everything further for smoke runs.

/// Parses --scale=S / --quick from argv and TCF_SCALE from the
/// environment. Default 1.0.
double ParseScale(int argc, char** argv);

/// True if --csv was passed (harnesses then print CSV instead of boxed
/// tables).
bool ParseCsvFlag(int argc, char** argv);

/// BK-like: small-world check-in network (§7's Brightkite analogue).
DatabaseNetwork MakeBkLike(double scale);

/// GW-like: same family, larger and denser (Gowalla analogue).
DatabaseNetwork MakeGwLike(double scale);

/// AMINER-like: planted co-author network with keyword themes.
CoauthorNetwork MakeAminerLike(double scale);

/// SYN: the §7 synthetic recipe.
DatabaseNetwork MakeSynLike(double scale);

/// Prints the standard harness header (dataset, scale, reproduction id).
void PrintHeader(const std::string& experiment_id,
                 const std::string& description, double scale);

}  // namespace bench
}  // namespace tcf

#endif  // TCF_BENCH_BENCH_COMMON_H_
