#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/string_util.h"

namespace tcf {
namespace bench {

double ParseScale(int argc, char** argv) {
  double scale = 1.0;
  const char* env = std::getenv("TCF_SCALE");
  if (env != nullptr) {
    auto parsed = ParseDouble(env);
    if (parsed.ok() && *parsed > 0) scale = *parsed;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      auto parsed = ParseDouble(argv[i] + 8);
      if (parsed.ok() && *parsed > 0) scale = *parsed;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      scale = 0.25;
    }
  }
  return scale;
}

bool ParseCsvFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) return true;
  }
  return false;
}

DatabaseNetwork MakeBkLike(double scale) {
  CheckinParams p;
  p.num_users = static_cast<size_t>(3000 * scale);
  p.num_locations = static_cast<size_t>(500 * scale);
  p.friends_k = 4;
  p.rewire_beta = 0.1;
  p.periods_per_user = 22;
  p.locations_per_period = 2.0;
  p.favorites_per_user = 6;
  p.social_mimicry = 0.55;
  p.seed = 1001;
  return GenerateCheckinNetwork(p);
}

DatabaseNetwork MakeGwLike(double scale) {
  CheckinParams p;
  p.num_users = static_cast<size_t>(6000 * scale);
  p.num_locations = static_cast<size_t>(1200 * scale);
  p.friends_k = 5;
  p.rewire_beta = 0.15;
  p.periods_per_user = 18;
  p.locations_per_period = 2.0;
  p.favorites_per_user = 7;
  p.social_mimicry = 0.5;
  p.seed = 2002;
  return GenerateCheckinNetwork(p);
}

CoauthorNetwork MakeAminerLike(double scale) {
  CoauthorParams p;
  p.num_groups = static_cast<size_t>(300 * scale);
  p.group_size_min = 4;
  p.group_size_max = 10;
  p.overlap_fraction = 0.2;
  p.theme_size = 4;
  p.intra_group_edge_prob = 0.6;
  p.background_edge_factor = 1.5;
  p.papers_per_membership = 10;
  p.keyword_recall = 0.85;
  p.num_noise_keywords = static_cast<size_t>(400 * scale);
  p.noise_per_paper = 2;
  p.solo_papers = 2;
  p.seed = 3003;
  return GenerateCoauthorNetwork(p);
}

DatabaseNetwork MakeSynLike(double scale) {
  SynParams p;
  // Average degree ~18 (paper: ~20 at 1e6 vertices / 1e7 edges); the
  // e^{0.1d}/e^{0.13d} formulas then give SYN the largest per-vertex
  // item volume, as in Table 2. The item vocabulary is kept large
  // relative to transaction length (paper ratio: ~13 items/tx over 1e4
  // items) — shrinking it superlinearly inflates the pattern lattice and
  // the TC-Tree.
  p.num_vertices = static_cast<size_t>(3000 * scale);
  p.num_edges = static_cast<size_t>(27000 * scale);
  p.num_items = static_cast<size_t>(2500 * scale);
  p.num_seeds = static_cast<size_t>(30 * scale);
  p.mutation_rate = 0.1;
  p.seed = 4004;
  return GenerateSynNetwork(p);
}

void PrintHeader(const std::string& experiment_id,
                 const std::string& description, double scale) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), description.c_str());
  std::printf("scale factor: %.2f (use --scale=S or TCF_SCALE to change)\n",
              scale);
  std::printf("Paper: Chu et al., Finding Theme Communities from Database\n");
  std::printf("Networks (VLDB 2019). Datasets are offline substitutes; see\n");
  std::printf("DESIGN.md §2. Compare shapes, not absolute numbers.\n");
  std::printf("==============================================================\n");
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace tcf
