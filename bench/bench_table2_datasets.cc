// Reproduces Table 2: statistics of the four database networks.
//
// Paper values (for shape reference, at full scale):
//            BK       GW       AMINER   SYN
// #Vertices  5.1e4    1.1e5    1.1e6    1.0e6
// #Edges     2.1e5    9.5e5    2.6e6    1.0e7
// #Tx        1.2e6    2.0e6    3.1e6    6.1e6
// #Items(t)  1.7e6    3.5e6    9.2e6    1.3e8
// #Items(u)  1.8e3    5.7e3    1.2e4    1.0e4
//
// Our datasets are offline substitutes at reduced scale; the harness
// checks the *relations* that matter to the algorithms (GW > BK in every
// count; SYN has the largest items-total per vertex; items-unique stays
// 3-4 orders below items-total).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "net/stats.h"
#include "util/table.h"
#include "util/timer.h"

using namespace tcf;

int main(int argc, char** argv) {
  const double scale = bench::ParseScale(argc, argv);
  const bool csv = bench::ParseCsvFlag(argc, argv);
  bench::PrintHeader("Table 2", "statistics of the database networks", scale);

  TextTable table({"dataset", "#Vertices", "#Edges", "#Transactions",
                   "#Items (total)", "#Items (unique)", "avg deg",
                   "gen time (s)"});

  auto add = [&](const char* name, const DatabaseNetwork& net, double secs) {
    NetworkStats s = ComputeStats(net);
    table.AddRow({name, TextTable::Num(s.num_vertices),
                  TextTable::Num(s.num_edges),
                  TextTable::Num(s.num_transactions),
                  TextTable::Num(s.num_items_total),
                  TextTable::Num(s.num_items_unique),
                  TextTable::Num(s.avg_degree, 2), TextTable::Num(secs, 2)});
  };

  {
    WallTimer t;
    DatabaseNetwork bk = bench::MakeBkLike(scale);
    add("BK-like", bk, t.Seconds());
  }
  {
    WallTimer t;
    DatabaseNetwork gw = bench::MakeGwLike(scale);
    add("GW-like", gw, t.Seconds());
  }
  {
    WallTimer t;
    CoauthorNetwork am = bench::MakeAminerLike(scale);
    add("AMINER-like", am.network, t.Seconds());
  }
  {
    WallTimer t;
    DatabaseNetwork syn = bench::MakeSynLike(scale);
    add("SYN", syn, t.Seconds());
  }

  if (csv) table.PrintCsv(std::cout);
  else table.Print(std::cout);

  std::printf("\nShape checks vs. paper Table 2:\n");
  std::printf(" - GW-like exceeds BK-like in vertices/edges/transactions\n");
  std::printf(" - items(unique) << items(total) on every dataset\n");
  std::printf(" - SYN carries the largest per-vertex item volume\n");
  return 0;
}
