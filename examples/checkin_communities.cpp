// Location-based social network example (the paper's BK/GW scenario):
// generate a check-in database network, mine theme communities — groups
// of friends who frequently visit the same set of places — and report
// the strongest ones.
//
// Build & run:  ./build/examples/checkin_communities [num_users]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/communities.h"
#include "core/tcfi.h"
#include "gen/checkin_generator.h"
#include "util/timer.h"

using namespace tcf;

int main(int argc, char** argv) {
  CheckinParams params;
  params.num_users = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 600;
  params.num_locations = 120;
  params.periods_per_user = 30;
  params.favorites_per_user = 6;
  params.social_mimicry = 0.6;
  params.seed = 20260611;

  std::printf("generating check-in network (%zu users, %zu locations)...\n",
              params.num_users, params.num_locations);
  DatabaseNetwork net = GenerateCheckinNetwork(params);
  std::printf("network: %zu vertices, %zu edges\n\n", net.num_vertices(),
              net.num_edges());

  const double alpha = 0.3;
  WallTimer timer;
  MiningResult result = RunTcfi(net, {.alpha = alpha});
  std::printf("TCFI(alpha=%.1f): %zu maximal pattern trusses in %.2f s\n",
              alpha, result.trusses.size(), timer.Seconds());
  std::printf("  (mptd calls: %llu, pruned by intersection: %llu)\n\n",
              static_cast<unsigned long long>(result.counters.mptd_calls),
              static_cast<unsigned long long>(
                  result.counters.pruned_by_intersection));

  auto communities = ExtractThemeCommunities(result.trusses);

  // Rank communities: prefer longer themes (more specific habits), then
  // larger groups.
  std::stable_sort(communities.begin(), communities.end(),
                   [](const ThemeCommunity& a, const ThemeCommunity& b) {
                     if (a.theme.size() != b.theme.size()) {
                       return a.theme.size() > b.theme.size();
                     }
                     return a.vertices.size() > b.vertices.size();
                   });

  std::printf("top communities (friend groups sharing check-in habits):\n");
  size_t shown = 0;
  for (const ThemeCommunity& c : communities) {
    if (c.vertices.size() < 4) continue;
    std::printf("  %-42s %3zu friends, %3zu edges\n",
                net.dictionary().Render(c.theme).c_str(), c.vertices.size(),
                c.edges.size());
    if (++shown == 12) break;
  }
  if (shown == 0) {
    std::printf("  (none above 3 members at this alpha — lower alpha)\n");
  }

  // Demonstrate overlap: find a vertex in communities of two different
  // themes (Def. 3.5 allows arbitrary overlap).
  for (size_t i = 0; i < communities.size(); ++i) {
    for (size_t j = i + 1; j < communities.size(); ++j) {
      if (communities[i].theme == communities[j].theme) continue;
      std::vector<VertexId> common;
      std::set_intersection(communities[i].vertices.begin(),
                            communities[i].vertices.end(),
                            communities[j].vertices.begin(),
                            communities[j].vertices.end(),
                            std::back_inserter(common));
      if (!common.empty()) {
        std::printf(
            "\noverlap example: user %u belongs to both %s and %s\n",
            common[0], net.dictionary().Render(communities[i].theme).c_str(),
            net.dictionary().Render(communities[j].theme).c_str());
        return 0;
      }
    }
  }
  return 0;
}
