// Edge database network example — the paper's §8 future-work direction,
// implemented here: each *edge* carries a transaction database describing
// the relationship (e.g. what two friends bought together). Theme
// communities are then groups of relationships sharing a pattern.
//
// Scenario: a gift-exchange circle. Edges record co-purchases between
// pairs of friends; we look for cliques of relationships that keep
// trading the same kind of gifts.
//
// Build & run:  ./build/examples/edge_themes
#include <cstdio>

#include "core/communities.h"
#include "ext/edge_miner.h"
#include "graph/graph_builder.h"

using namespace tcf;

int main() {
  // Two triangles sharing vertex 2: {0,1,2} and {2,3,4}, plus a chord.
  GraphBuilder builder(5);
  for (auto [a, b] : {std::pair<VertexId, VertexId>{0, 1}, {0, 2}, {1, 2},
                      {2, 3}, {2, 4}, {3, 4}, {1, 3}}) {
    (void)builder.AddEdge(a, b);
  }
  Graph g = builder.Build();

  ItemDictionary dict;
  const ItemId board_games = dict.GetOrAdd("board-games");
  const ItemId wine = dict.GetOrAdd("wine");
  const ItemId books = dict.GetOrAdd("books");

  // Edge databases, aligned with canonical edge-id order.
  std::vector<TransactionDb> dbs(g.num_edges());
  auto fill = [&](VertexId a, VertexId b, std::vector<Itemset> txs) {
    EdgeId e = g.FindEdge(a, b);
    for (auto& t : txs) dbs[e].Add(std::move(t));
  };
  // Triangle {0,1,2}: a board-game crowd.
  for (auto [a, b] : {std::pair<VertexId, VertexId>{0, 1}, {0, 2}, {1, 2}}) {
    fill(a, b, {Itemset({board_games}), Itemset({board_games, wine}),
                Itemset({board_games})});
  }
  // Triangle {2,3,4}: wine traders.
  for (auto [a, b] : {std::pair<VertexId, VertexId>{2, 3}, {2, 4}, {3, 4}}) {
    fill(a, b, {Itemset({wine}), Itemset({wine, books}), Itemset({wine})});
  }
  // The chord 1-3 only ever trades books: in no triangle's theme.
  fill(1, 3, {Itemset({books}), Itemset({books})});

  EdgeDatabaseNetwork net(std::move(g), std::move(dbs), std::move(dict));

  MiningResult result = RunEdgeTcfi(net, {.alpha = 0.4});
  auto communities = ExtractThemeCommunities(result.trusses);

  std::printf("alpha = 0.40: %zu edge-pattern trusses, %zu communities\n\n",
              result.trusses.size(), communities.size());
  for (const ThemeCommunity& c : communities) {
    std::printf("relationship theme %s -> people {",
                net.dictionary().Render(c.theme).c_str());
    for (size_t i = 0; i < c.vertices.size(); ++i) {
      std::printf("%s%u", i ? ", " : "", c.vertices[i]);
    }
    std::printf("} over %zu relationships\n", c.edges.size());
  }
  std::printf(
      "\nExpected: a {board-games} community on {0,1,2} and a {wine}\n"
      "community on {2,3,4} — vertex 2 sits in both (overlap), and the\n"
      "books-only chord 1-3 belongs to neither (it closes no themed\n"
      "triangle).\n");
  return 0;
}
