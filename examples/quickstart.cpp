// Quickstart: build a tiny database network by hand, mine its theme
// communities with TCFI, and print them.
//
// The network models the paper's motivating example: a social
// e-commerce site where each user's database holds shopping baskets.
// A group of friends who frequently buy {beer, diaper} together forms a
// theme community.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/communities.h"
#include "core/tcfi.h"
#include "graph/graph_builder.h"
#include "net/database_network.h"

using namespace tcf;

int main() {
  // ----- 1. The social graph: two friend circles joined by a bridge. ---
  //
  //   0 - 1        4 - 5
  //   | X |   3 -  | X |        (X = diagonals: K4 on {0,1,2,3} minus
  //   2 - 3        6 - 7         nothing; K4 on {4,5,6,7})
  GraphBuilder builder(8);
  for (VertexId a = 0; a < 4; ++a) {
    for (VertexId b = a + 1; b < 4; ++b) (void)builder.AddEdge(a, b);
  }
  for (VertexId a = 4; a < 8; ++a) {
    for (VertexId b = a + 1; b < 8; ++b) (void)builder.AddEdge(a, b);
  }
  (void)builder.AddEdge(3, 4);  // bridge between the circles

  // ----- 2. Vertex databases: shopping baskets. -------------------------
  ItemDictionary dict;
  const ItemId beer = dict.GetOrAdd("beer");
  const ItemId diaper = dict.GetOrAdd("diaper");
  const ItemId kale = dict.GetOrAdd("kale");
  const ItemId tofu = dict.GetOrAdd("tofu");

  std::vector<TransactionDb> dbs(8);
  // Circle {0,1,2,3}: frequent {beer, diaper} co-purchases.
  for (VertexId v = 0; v < 4; ++v) {
    for (int basket = 0; basket < 8; ++basket) {
      dbs[v].Add(basket < 6 ? Itemset({beer, diaper}) : Itemset({kale}));
    }
  }
  // Circle {4,5,6,7}: the health-food crowd (beer only occasionally —
  // f(beer) = 0.25 gives edge cohesion 0.5, which fails `> 0.5`).
  for (VertexId v = 4; v < 8; ++v) {
    for (int basket = 0; basket < 8; ++basket) {
      dbs[v].Add(basket < 6 ? Itemset({kale, tofu}) : Itemset({beer}));
    }
  }

  DatabaseNetwork net(builder.Build(), std::move(dbs), std::move(dict));

  // ----- 3. Mine all theme communities at cohesion threshold 0.5. ------
  const double alpha = 0.5;
  MiningResult result = RunTcfi(net, {.alpha = alpha});
  auto communities = ExtractThemeCommunities(result.trusses);

  std::printf("alpha = %.2f: %zu maximal pattern trusses, %zu communities\n\n",
              alpha, result.trusses.size(), communities.size());
  for (const ThemeCommunity& c : communities) {
    std::printf("theme %s -> members {", net.dictionary().Render(c.theme).c_str());
    for (size_t i = 0; i < c.vertices.size(); ++i) {
      std::printf("%s%u", i ? ", " : "", c.vertices[i]);
    }
    std::printf("}  (%zu edges)\n", c.edges.size());
  }

  std::printf(
      "\nExpected: {beer, diaper} (and its single items) on circle "
      "{0,1,2,3};\n{kale, tofu} on circle {4,5,6,7}. The bridge 3-4 joins "
      "no community:\nits edge lies in no triangle, so its cohesion is 0.\n");
  return 0;
}
