// Indexing and query-answering example (§6): build a TC-Tree once, then
// answer many (pattern, alpha) queries without re-mining — the paper's
// data-warehouse workflow. Also shows serialization: the network is
// saved and reloaded before indexing, as a warehouse pipeline would.
//
// Build & run:  ./build/examples/index_and_query
#include <cstdio>

#include "core/tc_tree.h"
#include "core/tc_tree_io.h"
#include "core/tc_tree_query.h"
#include "gen/syn_generator.h"
#include "net/network_io.h"
#include "util/timer.h"

using namespace tcf;

int main() {
  // ----- 1. Generate and persist a synthetic database network. ---------
  SynParams params;
  params.num_vertices = 800;
  params.num_edges = 3200;
  params.num_items = 150;
  params.num_seeds = 12;
  params.seed = 31337;
  DatabaseNetwork generated = GenerateSynNetwork(params);

  const std::string path = "/tmp/tcf_example_network.txt";
  if (Status s = SaveNetworkToFile(generated, path); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("saved network to %s\n", path.c_str());

  auto loaded = LoadNetworkFromFile(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const DatabaseNetwork& net = *loaded;
  std::printf("reloaded: %zu vertices, %zu edges, %zu items\n\n",
              net.num_vertices(), net.num_edges(), net.num_items());

  // ----- 2. Build the index once, persist it, reload it. ----------------
  WallTimer build_timer;
  TcTree built = TcTree::Build(net, {.num_threads = 4});
  std::printf("TC-Tree built: %zu nodes, %llu indexed edges, %.2f s\n",
              built.num_nodes(),
              static_cast<unsigned long long>(built.TotalIndexedEdges()),
              build_timer.Seconds());

  const std::string index_path = "/tmp/tcf_example_network.idx";
  if (Status s = SaveTcTreeToFile(built, index_path); !s.ok()) {
    std::fprintf(stderr, "index save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  WallTimer reload_timer;
  auto reloaded = LoadTcTreeFromFile(index_path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "index load failed: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }
  TcTree tree = std::move(*reloaded);
  std::printf("index persisted to %s and reloaded in %.3f s\n",
              index_path.c_str(), reload_timer.Seconds());
  const double alpha_star = CohesionToDouble(tree.MaxAlphaOverNodes());
  std::printf("nontrivial query range: alpha in [0, %.4f)\n\n", alpha_star);

  // ----- 3. Answer queries at many alphas with no re-mining. -----------
  Itemset everything(net.ActiveItems());
  std::printf("QBA sweep (query = S):\n");
  for (double alpha = 0.0; alpha < alpha_star; alpha += alpha_star / 5.0) {
    WallTimer t;
    TcTreeQueryResult r = QueryTcTree(tree, everything, alpha);
    std::printf("  alpha=%-8.4f -> %6llu trusses in %8.3f ms\n", alpha,
                static_cast<unsigned long long>(r.retrieved_nodes),
                t.Millis());
  }

  // ----- 4. Query by pattern: drill into one theme. ---------------------
  // Take the deepest indexed pattern as the "user query".
  Itemset deepest;
  for (TcTree::NodeId id = 1; id <= tree.num_nodes(); ++id) {
    Itemset p = tree.PatternOf(id);
    if (p.size() > deepest.size()) deepest = std::move(p);
  }
  std::printf("\nQBP: drill into pattern %s\n",
              net.dictionary().Render(deepest).c_str());
  TcTreeQueryResult r = QueryTcTree(tree, deepest, 0.0);
  std::printf("  %llu sub-pattern trusses retrieved:\n",
              static_cast<unsigned long long>(r.retrieved_nodes));
  for (const PatternTruss& truss : r.trusses) {
    std::printf("   %-36s |V|=%4zu |E|=%4zu\n",
                net.dictionary().Render(truss.pattern).c_str(),
                truss.num_vertices(), truss.num_edges());
  }
  return 0;
}
