// Co-author network example (the paper's AMINER case study, §7.4):
// generate a collaboration network with planted research groups, build a
// TC-Tree, and explore it the way the paper's Fig. 6 does — finding
// groups of collaborating scholars who share research interests, hub
// authors active in several sub-disciplines, and the narrowing effect of
// adding a keyword to a theme.
//
// Build & run:  ./build/examples/coauthor_casestudy
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "core/communities.h"
#include "core/tc_tree.h"
#include "core/tc_tree_query.h"
#include "gen/coauthor_generator.h"
#include "util/timer.h"

using namespace tcf;

int main() {
  CoauthorParams params;
  params.num_groups = 20;
  params.group_size_min = 5;
  params.group_size_max = 10;
  params.overlap_fraction = 0.3;  // plant multi-group "hub" scholars
  params.theme_size = 4;
  params.seed = 424242;

  CoauthorNetwork cn = GenerateCoauthorNetwork(params);
  const DatabaseNetwork& net = cn.network;
  std::printf("co-author network: %zu authors, %zu edges, %zu groups\n",
              net.num_vertices(), net.num_edges(), cn.groups.size());

  WallTimer timer;
  TcTree tree = TcTree::Build(net, {.num_threads = 4});
  std::printf("TC-Tree: %zu nodes (non-empty maximal pattern trusses) in %.2f s\n\n",
              tree.num_nodes(), timer.Seconds());

  // ---- Query a planted theme, as a user who knows some keywords. ------
  const PlantedGroup& g0 = cn.groups[0];
  std::printf("query: which communities involve the keywords %s?\n",
              net.dictionary().Render(g0.theme).c_str());
  auto communities = QueryThemeCommunities(tree, g0.theme, 0.0);
  std::printf("  %zu communities across all sub-patterns; those with the\n"
              "  full 4-keyword theme:\n", communities.size());
  for (const ThemeCommunity& c : communities) {
    if (c.theme.size() != g0.theme.size()) continue;
    std::printf("   - %zu scholars: ", c.vertices.size());
    for (size_t i = 0; i < std::min<size_t>(c.vertices.size(), 8); ++i) {
      std::printf("%sauthor%u", i ? ", " : "", c.vertices[i]);
    }
    std::printf("%s\n", c.vertices.size() > 8 ? ", ..." : "");
  }

  // ---- Fig. 6(a)->(b): narrowing a theme shrinks its community. -------
  std::printf("\nnarrowing (Thm. 5.1): drop to a sub-theme and back:\n");
  Itemset broad({g0.theme[0], g0.theme[1]});
  auto broad_result = QueryTcTree(tree, broad, 0.0);
  auto full_result = QueryTcTree(tree, g0.theme, 0.0);
  size_t broad_sz = 0, full_sz = 0;
  for (const auto& t : broad_result.trusses) {
    if (t.pattern == broad) broad_sz = t.num_vertices();
  }
  for (const auto& t : full_result.trusses) {
    if (t.pattern == g0.theme) full_sz = t.num_vertices();
  }
  std::printf("  theme %s -> %zu scholars\n",
              net.dictionary().Render(broad).c_str(), broad_sz);
  std::printf("  theme %s -> %zu scholars (⊆ the broader community)\n",
              net.dictionary().Render(g0.theme).c_str(), full_sz);

  // ---- Hub scholars: members of 2+ groups (Fig. 6(e)-(f)). ------------
  std::map<VertexId, std::vector<size_t>> memberships;
  for (size_t g = 0; g < cn.groups.size(); ++g) {
    for (VertexId m : cn.groups[g].members) memberships[m].push_back(g);
  }
  std::printf("\nhub scholars (multiple research communities):\n");
  size_t shown = 0;
  for (const auto& [author, groups] : memberships) {
    if (groups.size() < 2) continue;
    std::printf("  author%u works in themes:", author);
    for (size_t g : groups) {
      std::printf(" %s", net.dictionary().Render(cn.groups[g].theme).c_str());
    }
    std::printf("\n");
    // Verify via the index: the author appears in trusses of each theme.
    size_t found_in = 0;
    for (size_t g : groups) {
      auto r = QueryTcTree(tree, cn.groups[g].theme, 0.0);
      for (const auto& t : r.trusses) {
        if (t.pattern == cn.groups[g].theme &&
            std::binary_search(t.vertices.begin(), t.vertices.end(),
                               author)) {
          ++found_in;
          break;
        }
      }
    }
    std::printf("    -> recovered by the index in %zu/%zu of those themes\n",
                found_in, groups.size());
    if (++shown == 4) break;
  }
  if (shown == 0) std::printf("  (none planted at this seed)\n");
  return 0;
}
