#!/usr/bin/env python3
"""Diff a benchmark --json=FILE artifact against a checked-in baseline.

    tools/bench_diff.py BASELINE CURRENT [--tolerance=0.5] [--fail]

Both inputs are the flat `"metric": value` objects the bench harnesses
emit (bench/bench_json.h). Three classes of key, decided by name:

  exact      *.nodes, *.indexed_edges — deterministic at a fixed
             --scale (the parallel build commits in order). Any drift
             is a real behaviour change and always flagged.
  higher     *qps*, *hit_rate*, *speedup*, *partial_hits*, *composed*
             — throughput-like; flagged when current falls more than
             --tolerance below baseline.
  lower      *_us, *_ms, *_seconds, *_bytes — latency/footprint-like;
             flagged when current rises more than --tolerance above
             baseline.

Perf classes default to a wide --tolerance (0.5 = 50%) because baseline
and current rarely run on the same physical box; the exact class is the
tripwire with teeth. Without --fail the script reports and exits 0
(nightly CI mode: the artifact and the diff land in the run log, a noisy
runner does not page anyone); with --fail any flagged row exits 1.
"""

import json
import sys


def classify(key):
    leaf = key.rsplit(".", 1)[-1]
    if leaf in ("nodes", "indexed_edges"):
        return "exact"
    if any(t in leaf for t in ("qps", "hit_rate", "speedup", "partial_hits",
                               "composed")):
        return "higher"
    if leaf.endswith(("_us", "_ms", "_seconds", "_bytes")):
        return "lower"
    return "info"


def main(argv):
    tolerance = 0.5
    fail = False
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        elif arg == "--fail":
            fail = True
        elif arg.startswith("--"):
            sys.exit(f"bench_diff: unknown flag {arg}\n\n{__doc__}")
        else:
            paths.append(arg)
    if len(paths) != 2:
        sys.exit(__doc__)

    with open(paths[0]) as f:
        baseline = json.load(f)
    with open(paths[1]) as f:
        current = json.load(f)

    flagged = []
    rows = []
    for key, base in baseline.items():
        if key == "scale":
            continue
        kind = classify(key)
        if key not in current:
            rows.append((key, base, None, "MISSING"))
            flagged.append(key)
            continue
        cur = current[key]
        if not isinstance(base, (int, float)) or isinstance(base, bool) or \
           not isinstance(cur, (int, float)) or isinstance(cur, bool):
            verdict = "ok" if base == cur else "CHANGED"
            rows.append((key, base, cur, verdict))
            if verdict != "ok":
                flagged.append(key)
            continue
        if kind == "exact":
            verdict = "ok" if base == cur else "DRIFT (must be exact)"
        elif base == 0:
            verdict = "ok" if cur == 0 or kind == "info" else "was zero"
        else:
            rel = (cur - base) / abs(base)
            if kind == "higher" and rel < -tolerance:
                verdict = f"REGRESSED {rel:+.0%}"
            elif kind == "lower" and rel > tolerance:
                verdict = f"REGRESSED {rel:+.0%}"
            elif kind == "info":
                verdict = f"{rel:+.0%}"
            else:
                verdict = f"ok {rel:+.0%}"
        rows.append((key, base, cur, verdict))
        if "REGRESSED" in verdict or "DRIFT" in verdict or \
           verdict == "was zero":
            flagged.append(key)
    for key in current:
        if key != "scale" and key not in baseline:
            rows.append((key, None, current[key], "new"))

    if (baseline.get("scale"), current.get("scale")) != (None, None) and \
       baseline.get("scale") != current.get("scale"):
        print(f"bench_diff: scale mismatch (baseline "
              f"{baseline.get('scale')}, current {current.get('scale')}) — "
              f"exact-class keys will drift; comparing anyway")

    width = max((len(r[0]) for r in rows), default=3)

    def fmt(v):
        if v is None:
            return "-"
        if isinstance(v, float):
            return f"{v:.4g}"
        return str(v)

    print(f"{'metric':<{width}}  {'baseline':>12}  {'current':>12}  verdict")
    for key, base, cur, verdict in rows:
        print(f"{key:<{width}}  {fmt(base):>12}  {fmt(cur):>12}  {verdict}")

    if flagged:
        print(f"\n{len(flagged)} flagged: " + ", ".join(flagged))
        if fail:
            return 1
        print("(report-only mode; pass --fail to make this exit non-zero)")
    else:
        print("\nno regressions beyond tolerance "
              f"({tolerance:.0%}); exact keys match")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
