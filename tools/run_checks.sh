#!/usr/bin/env bash
# Tier-1 verification plus a serving-layer smoke run.
#
#   tools/run_checks.sh [build-dir]
#
# 1. Configure + build everything (library, CLI, examples, benches,
#    tests).
# 2. Run the full ctest suite.
# 3. Exercise `tcf serve` end-to-end: generate a small synthetic
#    network, build + persist a TC-Tree index, synthesize a 1000-query
#    workload, and serve it twice — the warm pass must report a nonzero
#    cache hit rate.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== configure + build =="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== serve smoke =="
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
TCF="$BUILD_DIR/tcf"

"$TCF" generate --kind=syn --out="$TMP/smoke.net" --scale=0.2 --seed=7
"$TCF" index --in="$TMP/smoke.net" --out="$TMP/smoke.idx" --threads=2

# 1000 queries over the syn items (named s0..): a mix of alphas and
# 1-3 item themes, with guaranteed repeats so the warm pass hits.
{
  echo "# run_checks smoke workload"
  for i in $(seq 0 999); do
    a=$((i % 4))
    echo "0.0$a;s$((i % 60)),s$(((i * 7) % 60))"
  done
} > "$TMP/workload.txt"

OUT="$("$TCF" serve --in="$TMP/smoke.net" --index="$TMP/smoke.idx" \
        --workload="$TMP/workload.txt" --threads=4 --repeat=2)"
echo "$OUT"

# The warm pass must report a cache hit rate > 0.
echo "$OUT" | awk '
  /^\| warm1/ {
    # last numeric column is the per-pass hit rate
    rate = $(NF - 1)
    if (rate + 0 > 0) { found = 1 }
  }
  END {
    if (!found) { print "FAIL: warm pass shows no cache hits"; exit 1 }
    print "OK: warm pass cache hit rate > 0"
  }'

echo "== all checks passed =="
