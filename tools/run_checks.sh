#!/usr/bin/env bash
# Tier-1 verification plus a serving-layer smoke run.
#
#   tools/run_checks.sh [build-dir]
#
# 1. Configure + build everything (library, CLI, examples, benches,
#    tests).
# 2. Run the full ctest suite.
# 3. Exercise `tcf serve` end-to-end: generate a small synthetic
#    network, build + persist a TC-Tree index, synthesize a 1000-query
#    workload, and serve it twice — the warm pass must report a nonzero
#    cache hit rate.
# 4. Exercise the network path: start `tcf serve --listen` on an
#    ephemeral port, drive it with `tcf client` (ping, queries, the
#    workload both as one-request round trips and as pipelined BATCH
#    exchanges, STATS — including the subset-composable cache's
#    cache_partial_hits counter going positive — a METRICS scrape whose
#    query counter advances across a query, an EXPLAIN carrying every
#    stage span, a RELOAD of a rebuilt index, QUIT), prove the server
#    survives an abruptly closed
#    connection (a peer that dies mid-BATCH), assert every client exit
#    code, check the server does not leak file descriptors across all of
#    that traffic, and check it shuts down cleanly on SIGTERM.
# 5. Streaming-update smoke: push an UPDATE over the wire with
#    `tcf client --update-tx/--update-edge`, check the STATS `updates`
#    counter advances, and prove post-update answers match a second
#    server whose index was rebuilt from scratch over the mutated
#    network (the rebuild oracle, byte-for-byte on client output).
# 6. Repeat the network path against `tcf serve --shards=2`: the sharded
#    backend must answer the same traffic, STATS must expose the shard
#    counters (shards / shard_queries / shard_reload_ms), EXPLAIN must
#    report shards_probed, and RELOAD must roll shard by shard.
# 7. TCFI zero-copy snapshot smoke: `tcf index --format=tcfi --slices=2`,
#    query parity mapped vs. text, clean rejection of torn and
#    bit-flipped files, RELOAD-to-mmap on a live server (torn RELOAD
#    fails the client, server keeps serving), and `--shards=2` serving
#    straight from the mapped slice files.
# 8. Overload smoke: a server armed with the walk.deadline failpoint and
#    a tight --rate-limit-qps must refuse cleanly over the wire — every
#    refusal a parseable ERR DeadlineExceeded / ERR RateLimited line,
#    the STATS counters advancing, PING and STATS still exempt and
#    healthy throughout (docs/robustness.md).
#
# CI-friendly: every smoke failure exits non-zero (set -e covers the
# backgrounded server through explicit guards), worker counts fall back
# when `nproc` is missing, and the /proc fd-leak check is skipped — not
# failed — on runners without /proc (macOS).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
# nproc is Linux-only; macOS CI runners spell it sysctl.
NPROC="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== configure + build =="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$NPROC"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$NPROC"

echo "== serve smoke =="
TMP="$(mktemp -d)"
SERVER_PID=""
ORACLE_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  [ -n "$ORACLE_PID" ] && kill "$ORACLE_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT
TCF="$BUILD_DIR/tcf"

"$TCF" generate --kind=syn --out="$TMP/smoke.net" --scale=0.2 --seed=7
"$TCF" index --in="$TMP/smoke.net" --out="$TMP/smoke.idx" --threads=2

# 1000 queries over the syn items (named s0..): a mix of alphas and
# 1-3 item themes, with guaranteed repeats so the warm pass hits.
{
  echo "# run_checks smoke workload"
  for i in $(seq 0 999); do
    a=$((i % 4))
    echo "0.0$a;s$((i % 60)),s$(((i * 7) % 60))"
  done
} > "$TMP/workload.txt"

# --compose-min-us=0 pins the work-aware gate open: this tiny network's
# walks are microseconds, and the smoke must exercise partial reuse
# deterministically, not depend on the gate's latency estimate.
OUT="$("$TCF" serve --in="$TMP/smoke.net" --index="$TMP/smoke.idx" \
        --workload="$TMP/workload.txt" --threads=4 --repeat=2 \
        --compose-min-us=0)"
echo "$OUT"

# The warm pass must report a cache hit rate > 0.
echo "$OUT" | awk '
  /^\| warm1/ {
    # last numeric column is the per-pass hit rate
    rate = $(NF - 1)
    if (rate + 0 > 0) { found = 1 }
  }
  END {
    if (!found) { print "FAIL: warm pass shows no cache hits"; exit 1 }
    print "OK: warm pass cache hit rate > 0"
  }'

echo "== network smoke =="
# Long-lived server on a kernel-assigned port; the log tells us which.
"$TCF" serve --in="$TMP/smoke.net" --index="$TMP/smoke.idx" --listen=0 \
       --threads=4 --compose-min-us=0 > "$TMP/server.log" 2>&1 &
SERVER_PID=$!
PORT=""
for _ in $(seq 100); do
  PORT="$(sed -n 's/.*listening on [^:]*:\([0-9][0-9]*\).*/\1/p' \
          "$TMP/server.log")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "FAIL: server died on startup";
                                         cat "$TMP/server.log"; exit 1; }
  sleep 0.1
done
[ -n "$PORT" ] || { echo "FAIL: server never reported its port"; exit 1; }
echo "server is up on port $PORT"

# Baseline fd count, taken once the server is idle and listening. Every
# connection the smoke opens below must be returned by the time we
# measure again — an epoll server that forgets to close parked or
# half-dead sockets fails here. /proc is Linux-only; on runners without
# it (macOS) the leak check is skipped, not failed.
HAVE_PROC=0
[ -d "/proc/$SERVER_PID/fd" ] && HAVE_PROC=1
count_fds() { ls "/proc/$SERVER_PID/fd" | wc -l; }
FDS_BEFORE=0
if [ "$HAVE_PROC" = 1 ]; then
  FDS_BEFORE="$(count_fds)"
else
  echo "note: /proc unavailable; skipping the fd-leak check"
fi

# Ping + a query + STATS over one connection (ends with QUIT).
"$TCF" client --port="$PORT" --ping --query="0.01;s1,s2" --stats

# The whole workload over the wire, one request per round trip. The
# workload's 2-item queries overlap heavily without repeating exactly,
# so the subset-composable cache must report partial reuse afterwards.
"$TCF" client --port="$PORT" --workload="$TMP/workload.txt"
"$TCF" client --port="$PORT" --stats | awk '
  $1 == "cache_partial_hits" {
    if ($2 + 0 > 0) { found = 1 }
  }
  END {
    if (!found) { print "FAIL: no partial cache hits after the workload";
                  exit 1 }
    print "OK: composable cache reported partial hits over the wire"
  }'

# The same workload as pipelined BATCH exchanges (64 queries per round
# trip): same answers, a fraction of the round trips.
"$TCF" client --port="$PORT" --batch="$TMP/workload.txt" --batch-size=64

# Observability over the wire. METRICS must be scrapeable and its
# query counter must advance between scrapes — the registry observes
# live traffic, not a snapshot.
Q1="$("$TCF" client --port="$PORT" --metrics \
      | awk '$1 == "tcf_queries_total" { print $2 }')"
[ -n "$Q1" ] || { echo "FAIL: METRICS lacks tcf_queries_total"; exit 1; }
"$TCF" client --port="$PORT" --query="0.01;s3,s4"
Q2="$("$TCF" client --port="$PORT" --metrics \
      | awk '$1 == "tcf_queries_total" { print $2 }')"
if [ "${Q2%.*}" -le "${Q1%.*}" ]; then
  echo "FAIL: tcf_queries_total did not advance ($Q1 -> $Q2)"; exit 1
fi
echo "OK: METRICS scrape parses and tcf_queries_total advanced ($Q1 -> $Q2)"

# EXPLAIN executes the query and answers with its trace: all five
# stage keys, wall and CPU, plus total_us must be present.
"$TCF" client --port="$PORT" --explain="0.01;s1,s2" | awk '
  $1 ~ /^stage_(parse|cache_probe|compose|walk|serialize)_us$/ { w++ }
  $1 ~ /^stage_(parse|cache_probe|compose|walk|serialize)_cpu_us$/ { c++ }
  $1 == "total_us" { t = 1 }
  END {
    if (w != 5 || c != 5 || !t) {
      print "FAIL: EXPLAIN reply incomplete (" w " wall, " c " cpu keys)"
      exit 1
    }
    print "OK: EXPLAIN returned all stage spans and total_us"
  }'

# An abruptly closed connection — a peer that announces a BATCH, sends
# part of the body, and vanishes — must not wedge or kill the server.
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf 'PING\nBATCH 5\n0.01;s1\n0.01;s' >&3
exec 3<&- 3>&-
"$TCF" client --port="$PORT" --ping --query="0.01;s1,s2" \
  || { echo "FAIL: server unhealthy after abrupt close"; exit 1; }
echo "OK: server survived an abruptly closed mid-BATCH connection"

echo "== streaming update smoke =="
# UPDATE over the wire: one transaction + one edge pushed into the live
# index through the client. The STATS `updates` counter must advance.
U1="$("$TCF" client --port="$PORT" --stats \
      | awk '$1 == "updates" { print $2 }')"
[ -n "$U1" ] || { echo "FAIL: STATS lacks the updates counter"; exit 1; }
"$TCF" client --port="$PORT" --update-tx="0:s1,s2" --update-edge="0-1"
U2="$("$TCF" client --port="$PORT" --stats \
      | awk '$1 == "updates" { print $2 }')"
if [ "${U2:-0}" -le "${U1:-0}" ]; then
  echo "FAIL: STATS updates counter did not advance ($U1 -> $U2)"; exit 1
fi
echo "OK: UPDATE accepted over the wire (updates $U1 -> $U2)"

# An update referencing vocabulary the index was never built over must
# be rejected atomically (client exits non-zero, server unharmed).
if "$TCF" client --port="$PORT" --update-tx="0:no_such_item" 2>/dev/null
then
  echo "FAIL: unknown-item update did not fail the client"; exit 1
fi
"$TCF" client --port="$PORT" --ping

# Post-update parity against the rebuild oracle: replay the same
# mutation onto the text network, rebuild an index from scratch, serve
# it from a second server, and require byte-identical client output.
python3 - "$TMP/smoke.net" "$TMP/mutated.net" <<'PY'
import sys
src, dst = sys.argv[1], sys.argv[2]
lines = open(src).read().splitlines()
ids = {p[2]: p[1] for p in (l.split() for l in lines)
       if p and p[0] == "i"}
out = []
i = 0
while i < len(lines):
    parts = lines[i].split()
    if parts and parts[0] == "d" and parts[1] == "0":
        n = int(parts[2])
        out.append(f"d 0 {n + 1}")
        for _ in range(n):
            i += 1
            out.append(lines[i])
        # the transaction --update-tx=0:s1,s2 appended, in insert order
        out.append(f"t {ids['s1']} {ids['s2']}")
    elif parts and parts[0] == "end":
        out.append("e 0 1")  # --update-edge=0-1 (builder dedups)
        out.append(lines[i])
    else:
        out.append(lines[i])
    i += 1
open(dst, "w").write("\n".join(out) + "\n")
PY
"$TCF" index --in="$TMP/mutated.net" --out="$TMP/oracle.idx" --threads=2
"$TCF" serve --in="$TMP/mutated.net" --index="$TMP/oracle.idx" --listen=0 \
       --threads=2 --compose-min-us=0 > "$TMP/server_oracle.log" 2>&1 &
ORACLE_PID=$!
OPORT=""
for _ in $(seq 100); do
  OPORT="$(sed -n 's/.*listening on [^:]*:\([0-9][0-9]*\).*/\1/p' \
           "$TMP/server_oracle.log")"
  [ -n "$OPORT" ] && break
  kill -0 "$ORACLE_PID" 2>/dev/null || { echo "FAIL: oracle server died";
                                         cat "$TMP/server_oracle.log";
                                         exit 1; }
  sleep 0.1
done
[ -n "$OPORT" ] || { echo "FAIL: oracle server never reported its port";
                     exit 1; }
for q in "0;s1,s2" "0.01;s1" "0.02;s2,s3"; do
  "$TCF" client --port="$PORT" --query="$q" >> "$TMP/live.out"
  "$TCF" client --port="$OPORT" --query="$q" >> "$TMP/oracle.out"
done
diff "$TMP/live.out" "$TMP/oracle.out" || {
  echo "FAIL: post-update answers diverge from the rebuild oracle"
  exit 1
}
echo "OK: post-update answers match the from-scratch rebuild oracle"
kill -TERM "$ORACLE_PID"
wait "$ORACLE_PID" || { echo "FAIL: oracle server exited non-zero"; exit 1; }
ORACLE_PID=""

# Hot-reload: rebuild the index (single-threaded this time, same tree)
# and roll it in under the running server, then query again.
"$TCF" index --in="$TMP/smoke.net" --out="$TMP/smoke2.idx" --threads=1
"$TCF" client --port="$PORT" --reload="$TMP/smoke2.idx" \
       --query="0.01;s1,s2" --stats

# A malformed query must fail the client (non-zero exit) without
# killing the server.
if "$TCF" client --port="$PORT" --query="nan;s1" 2>/dev/null; then
  echo "FAIL: malformed query did not fail the client"; exit 1
fi
"$TCF" client --port="$PORT" --ping

# A malformed line inside a BATCH must fail the client the same way,
# and leave the server standing (the bad slot answers ERR; its
# neighbours still answer).
printf '0.01;s1\nnan;s1\n0.01;s2\n' > "$TMP/bad_batch.txt"
if "$TCF" client --port="$PORT" --batch="$TMP/bad_batch.txt" 2>/dev/null
then
  echo "FAIL: malformed batch line did not fail the client"; exit 1
fi
"$TCF" client --port="$PORT" --ping

# No fd leaks: every connection above (client sessions, the workload
# runs, the abruptly closed peer) must be back. Poll briefly — the
# server reaps dead peers asynchronously.
if [ "$HAVE_PROC" = 1 ]; then
  FDS_AFTER="$(count_fds)"
  for _ in $(seq 50); do
    FDS_AFTER="$(count_fds)"
    [ "$FDS_AFTER" -le "$FDS_BEFORE" ] && break
    sleep 0.1
  done
  if [ "$FDS_AFTER" -gt "$FDS_BEFORE" ]; then
    echo "FAIL: server leaks fds ($FDS_BEFORE before traffic," \
         "$FDS_AFTER after)"
    exit 1
  fi
  echo "OK: no fd leak ($FDS_BEFORE fds before traffic, $FDS_AFTER after)"
fi

# Graceful shutdown: SIGTERM, clean exit code, final report printed. The
# kill itself is guarded: a server that already died would otherwise
# fail the script here with a bare `kill` error instead of a diagnosis.
kill -TERM "$SERVER_PID" || { echo "FAIL: server died before SIGTERM";
                              cat "$TMP/server.log"; exit 1; }
wait "$SERVER_PID" || { echo "FAIL: server exited non-zero"; exit 1; }
SERVER_PID=""
grep -q "shutting down" "$TMP/server.log" || {
  echo "FAIL: server log lacks the shutdown banner"; exit 1; }
echo "OK: network smoke (serve --listen / client / RELOAD / shutdown)"

echo "== sharded network smoke (--shards=2) =="
# Same server, hash-partitioned across two shards: answers must be
# indistinguishable from the single-shard path on the wire, STATS must
# expose the shard counters, EXPLAIN must report the scatter fan-out,
# and RELOAD must roll every shard (one rolling swap per shard, never a
# global pause).
"$TCF" serve --in="$TMP/smoke.net" --index="$TMP/smoke.idx" --listen=0 \
       --threads=4 --shards=2 --compose-min-us=0 \
       > "$TMP/server2.log" 2>&1 &
SERVER_PID=$!
PORT=""
for _ in $(seq 100); do
  PORT="$(sed -n 's/.*listening on [^:]*:\([0-9][0-9]*\).*/\1/p' \
          "$TMP/server2.log")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || {
    echo "FAIL: sharded server died on startup"
    cat "$TMP/server2.log"; exit 1; }
  sleep 0.1
done
[ -n "$PORT" ] || { echo "FAIL: sharded server never reported its port";
                    exit 1; }
echo "sharded server is up on port $PORT"

"$TCF" client --port="$PORT" --ping --query="0.01;s1,s2"
"$TCF" client --port="$PORT" --workload="$TMP/workload.txt"

# STATS must show the sharded backend: shards == 2 and the scatter
# counter strictly positive after the workload.
"$TCF" client --port="$PORT" --stats | awk '
  $1 == "shards" && $2 + 0 == 2 { shards_ok = 1 }
  $1 == "shard_queries" && $2 + 0 > 0 { scatter_ok = 1 }
  END {
    if (!shards_ok) { print "FAIL: STATS does not report shards 2"; exit 1 }
    if (!scatter_ok) { print "FAIL: shard_queries never advanced"; exit 1 }
    print "OK: STATS reports shards=2 and shard_queries > 0"
  }'

# EXPLAIN on a 2-item query must report its scatter fan-out: at least
# one shard probed, never more than min(shards, |items|) = 2.
"$TCF" client --port="$PORT" --explain="0.01;s1,s2" | awk '
  $1 == "shards_probed" { probed = $2 + 0; seen = 1 }
  END {
    if (!seen) { print "FAIL: EXPLAIN lacks shards_probed"; exit 1 }
    if (probed < 1 || probed > 2) {
      print "FAIL: shards_probed out of range: " probed; exit 1
    }
    print "OK: EXPLAIN reports shards_probed=" probed
  }'

# RELOAD rolls shard by shard; afterwards every shard must carry the
# new snapshot and queries must keep answering.
"$TCF" client --port="$PORT" --reload="$TMP/smoke2.idx" \
       --query="0.01;s1,s2"
"$TCF" client --port="$PORT" --stats | awk '
  $1 == "shard_reload_ms" && $2 + 0 > 0 { found = 1 }
  END {
    if (!found) { print "FAIL: shard_reload_ms is zero after RELOAD";
                  exit 1 }
    print "OK: rolling reload touched the shards (shard_reload_ms > 0)"
  }'

# The metrics registry must observe sharded traffic too.
Q1="$("$TCF" client --port="$PORT" --metrics \
      | awk '$1 == "tcf_queries_total" { print $2 }')"
[ -n "$Q1" ] || { echo "FAIL: sharded METRICS lacks tcf_queries_total";
                  exit 1; }
"$TCF" client --port="$PORT" --query="0.01;s3,s4"
Q2="$("$TCF" client --port="$PORT" --metrics \
      | awk '$1 == "tcf_queries_total" { print $2 }')"
if [ "${Q2%.*}" -le "${Q1%.*}" ]; then
  echo "FAIL: sharded tcf_queries_total did not advance ($Q1 -> $Q2)"
  exit 1
fi

kill -TERM "$SERVER_PID" || { echo "FAIL: sharded server died early";
                              cat "$TMP/server2.log"; exit 1; }
wait "$SERVER_PID" || { echo "FAIL: sharded server exited non-zero";
                        exit 1; }
SERVER_PID=""
grep -q "shutting down" "$TMP/server2.log" || {
  echo "FAIL: sharded server log lacks the shutdown banner"; exit 1; }
echo "OK: sharded network smoke (--shards=2 / STATS / EXPLAIN / RELOAD)"

echo "== tcfi zero-copy snapshot smoke =="
# The binary index format end-to-end through the CLI: write (+ shard
# slices), query parity with the text index, RELOAD-to-mmap on a live
# server, sliced sharded serving, and loader rejection of torn/corrupt
# files — clean errors, never crashes. tests/tcfi_corrupt_test.cc owns
# the exhaustive mutation property suite; this is the CLI-visible
# slice of the same guarantees.
"$TCF" index --in="$TMP/smoke.net" --out="$TMP/smoke.tcfi" --threads=2 \
       --slices=2

# Query parity, mapped vs. text-deserialized (timing lines filtered;
# the truss lines must match byte-for-byte and must be non-empty).
"$TCF" query --in="$TMP/smoke.net" --index="$TMP/smoke.idx" \
       --items=s1,s2 --alpha=0 | grep '^  ' > "$TMP/q_text.out"
"$TCF" query --in="$TMP/smoke.net" --index="$TMP/smoke.tcfi" \
       --items=s1,s2 --alpha=0 | grep '^  ' > "$TMP/q_tcfi.out"
[ -s "$TMP/q_text.out" ] || { echo "FAIL: parity query returned nothing";
                              exit 1; }
diff "$TMP/q_text.out" "$TMP/q_tcfi.out" || {
  echo "FAIL: mapped .tcfi answers diverge from the text index"; exit 1; }
echo "OK: tcf query over a mapped .tcfi matches the text index"

# Torn write: a truncated file must be rejected with a clean error.
head -c 100 "$TMP/smoke.tcfi" > "$TMP/torn.tcfi"
if "$TCF" query --in="$TMP/smoke.net" --index="$TMP/torn.tcfi" \
          --items=s1 --alpha=0 2>/dev/null; then
  echo "FAIL: truncated .tcfi was not rejected"; exit 1
fi
# Bit rot: one flipped byte in the node arena must trip the section
# checksum at map time.
python3 - "$TMP/smoke.tcfi" "$TMP/flipped.tcfi" <<'PY'
import sys
data = bytearray(open(sys.argv[1], "rb").read())
data[300] ^= 0xFF
open(sys.argv[2], "wb").write(bytes(data))
PY
if "$TCF" query --in="$TMP/smoke.net" --index="$TMP/flipped.tcfi" \
          --items=s1 --alpha=0 2>/dev/null; then
  echo "FAIL: corrupt .tcfi passed checksum validation"; exit 1
fi
echo "OK: torn and bit-flipped .tcfi files are rejected cleanly"

# RELOAD-to-mmap on a live server: roll the .tcfi in over the wire;
# answers must match the text index it replaces, a RELOAD of a torn
# file must fail the client and leave the server serving.
"$TCF" serve --in="$TMP/smoke.net" --index="$TMP/smoke.idx" --listen=0 \
       --threads=2 --compose-min-us=0 > "$TMP/server3.log" 2>&1 &
SERVER_PID=$!
PORT=""
for _ in $(seq 100); do
  PORT="$(sed -n 's/.*listening on [^:]*:\([0-9][0-9]*\).*/\1/p' \
          "$TMP/server3.log")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "FAIL: tcfi server died";
                                         cat "$TMP/server3.log"; exit 1; }
  sleep 0.1
done
[ -n "$PORT" ] || { echo "FAIL: tcfi server never reported its port";
                    exit 1; }
"$TCF" client --port="$PORT" --query="0;s1,s2" > "$TMP/r_text.out"
"$TCF" client --port="$PORT" --reload="$TMP/smoke.tcfi"
"$TCF" client --port="$PORT" --query="0;s1,s2" > "$TMP/r_tcfi.out"
diff "$TMP/r_text.out" "$TMP/r_tcfi.out" || {
  echo "FAIL: answers changed after RELOAD to the mapped .tcfi"; exit 1; }
if "$TCF" client --port="$PORT" --reload="$TMP/torn.tcfi" 2>/dev/null; then
  echo "FAIL: RELOAD of a torn .tcfi did not fail the client"; exit 1
fi
"$TCF" client --port="$PORT" --ping --query="0;s1,s2" > /dev/null \
  || { echo "FAIL: server unhealthy after rejected RELOAD"; exit 1; }
kill -TERM "$SERVER_PID" || { echo "FAIL: tcfi server died early";
                              cat "$TMP/server3.log"; exit 1; }
wait "$SERVER_PID" || { echo "FAIL: tcfi server exited non-zero"; exit 1; }
SERVER_PID=""
echo "OK: RELOAD swapped in the mapped snapshot; torn RELOAD rejected"

# Sliced sharded serving: --shards=2 over the slice files written by
# `index --slices=2` must map per-shard slices zero-copy and answer
# like the unsharded mapped index. (--no-update: the streaming updater
# needs an owned whole-tree baseline, so slices serve read-only.)
"$TCF" serve --in="$TMP/smoke.net" --index="$TMP/smoke.tcfi" --listen=0 \
       --threads=2 --shards=2 --no-update --compose-min-us=0 \
       > "$TMP/server4.log" 2>&1 &
SERVER_PID=$!
PORT=""
for _ in $(seq 100); do
  PORT="$(sed -n 's/.*listening on [^:]*:\([0-9][0-9]*\).*/\1/p' \
          "$TMP/server4.log")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "FAIL: sliced server died";
                                         cat "$TMP/server4.log"; exit 1; }
  sleep 0.1
done
[ -n "$PORT" ] || { echo "FAIL: sliced server never reported its port";
                    exit 1; }
grep -q "shard slices" "$TMP/server4.log" || {
  echo "FAIL: sliced server did not map the shard slice files"
  cat "$TMP/server4.log"; exit 1; }
"$TCF" client --port="$PORT" --query="0;s1,s2" > "$TMP/r_sliced.out"
diff "$TMP/r_tcfi.out" "$TMP/r_sliced.out" || {
  echo "FAIL: sliced shards answer differently from the mapped index"
  exit 1; }
kill -TERM "$SERVER_PID" || { echo "FAIL: sliced server died early";
                              cat "$TMP/server4.log"; exit 1; }
wait "$SERVER_PID" || { echo "FAIL: sliced server exited non-zero";
                        exit 1; }
SERVER_PID=""
echo "OK: --shards=2 served zero-copy from the checked slice files"

echo "== overload smoke =="
# A server that must refuse: the walk.deadline failpoint expires every
# walk's budget deterministically (no flaky timing on a tiny network),
# and a 1 qps / burst-2 token bucket turns a pipelined flood into rate
# limiting. Every refusal must still be a clean, parseable ERR line.
TCF_FAILPOINTS=1 TCF_FAILPOINTS_SPEC="walk.deadline=always" \
  "$TCF" serve --in="$TMP/smoke.net" --index="$TMP/smoke.idx" --listen=0 \
         --threads=2 --compose-min-us=0 \
         --default-deadline-ms=50 --rate-limit-qps=1 --rate-limit-burst=2 \
         > "$TMP/server5.log" 2>&1 &
SERVER_PID=$!
PORT=""
for _ in $(seq 100); do
  PORT="$(sed -n 's/.*listening on [^:]*:\([0-9][0-9]*\).*/\1/p' \
          "$TMP/server5.log")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "FAIL: overload server died";
                                         cat "$TMP/server5.log"; exit 1; }
  sleep 0.1
done
[ -n "$PORT" ] || { echo "FAIL: overload server never reported its port";
                    exit 1; }

# A query whose walk budget is injected-expired must fail the client
# (non-zero exit) while the server stays up.
if "$TCF" client --port="$PORT" --query="0.01;s1,s2" 2>/dev/null; then
  echo "FAIL: deadline-expired query did not fail the client"; exit 1
fi
"$TCF" client --port="$PORT" --ping

# Pipelined flood over one raw connection: 8 query lines, 8 responses.
# Expired results are never cached, so every response is a single ERR
# line — the first within-burst requests DeadlineExceeded, the rest
# RateLimited with a retry hint. No torn frames, no hangs.
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
for i in $(seq 8); do printf '0.01;s%d,s%d\n' "$i" "$((i + 1))" >&3; done
DEADLINED=0
LIMITED=0
for _ in $(seq 8); do
  IFS= read -r line <&3 || { echo "FAIL: flood response stream ended early";
                             exit 1; }
  case "$line" in
    "TCF1 ERR DeadlineExceeded "*) DEADLINED=$((DEADLINED + 1)) ;;
    "TCF1 ERR RateLimited "*"retry in"*) LIMITED=$((LIMITED + 1)) ;;
    *) echo "FAIL: unclean overload response: $line"; exit 1 ;;
  esac
done
exec 3<&- 3>&-
[ "$DEADLINED" -ge 1 ] || { echo "FAIL: no DeadlineExceeded in the flood";
                            exit 1; }
[ "$LIMITED" -ge 1 ] || { echo "FAIL: no RateLimited in the flood"; exit 1; }
echo "OK: flood answered cleanly ($DEADLINED deadline-expired," \
     "$LIMITED rate-limited)"

# STATS stays exempt from the rate limit and must show both counters.
"$TCF" client --port="$PORT" --stats | awk '
  $1 == "deadline_exceeded" && $2 + 0 > 0 { d = 1 }
  $1 == "rate_limited" && $2 + 0 > 0 { r = 1 }
  $1 == "clients_tracked" && $2 + 0 > 0 { c = 1 }
  END {
    if (!d) { print "FAIL: STATS deadline_exceeded never advanced"; exit 1 }
    if (!r) { print "FAIL: STATS rate_limited never advanced"; exit 1 }
    if (!c) { print "FAIL: STATS clients_tracked is zero"; exit 1 }
    print "OK: STATS reports deadline_exceeded, rate_limited," \
          "clients_tracked > 0"
  }'

kill -TERM "$SERVER_PID" || { echo "FAIL: overload server died early";
                              cat "$TMP/server5.log"; exit 1; }
wait "$SERVER_PID" || { echo "FAIL: overload server exited non-zero";
                        exit 1; }
SERVER_PID=""
echo "OK: overload smoke (deadlines / rate limit / clean refusals)"

echo "== all checks passed =="
