// tcf — command-line front end for the theme-community library.
//
// Subcommands:
//   generate --kind=bk|gw|aminer|syn --out=FILE [--scale=S] [--seed=N]
//       Generate a dataset and save it in the tcf-dbnet text format.
//   stats   --in=FILE
//       Print Table-2-style statistics of a saved network.
//   mine    --in=FILE [--alpha=A] [--method=tcfi|tcfa|tcs] [--epsilon=E]
//           [--max-len=K] [--top=N]
//       Mine theme communities and print the top N by size.
//   index   --in=FILE --out=FILE.idx [--format=tcft|tcfi] [--slices=N]
//           [--build-threads=T] [--max-nodes=N]
//       Build a TC-Tree and persist it (the §6 data-warehouse workflow).
//       Every tree layer builds in parallel over T workers (default:
//       hardware concurrency; --threads is accepted as a legacy alias).
//       --format picks the on-disk format (default: tcfi when --out
//       ends in .tcfi, else the tcft text format): tcfi is the
//       pointer-free binary layout (docs/index-format.md) that query
//       and serve mmap zero-copy instead of parsing. --slices=N
//       (tcfi only) additionally writes the N per-shard slice files
//       `FILE.shard<i>-of-<N>` that `serve --shards=N` maps directly.
//   query   --in=FILE [--index=FILE.idx] [--alpha=A] [--items=a,b,c]
//           [--build-threads=T]
//       Answer one query (item *names*, comma-separated; defaults to all
//       items) against a freshly built or previously saved TC-Tree.
//   serve   --in=FILE --workload=FILE [--index=FILE.idx] [--threads=T]
//           [--build-threads=B] [--cache-mb=M] [--repeat=R] [--batch=B]
//           [--max-nodes=N] [--compose-min-us=U]
//       Run a query workload through the concurrent serving layer
//       (src/serve/): answers are produced by QueryService worker
//       threads over one immutable TC-Tree snapshot, with a sharded LRU
//       result cache of M MiB (default 64; 0 disables). The cache is
//       subset-composable (docs/architecture.md): misses compose cached
//       sub-pattern answers once the average full walk costs at least U
//       microseconds (default 100; 0 = always). The workload
//       file has one query per line in the form
//           alpha;item,item,...
//       where `alpha` is the cohesion threshold and the items are
//       comma-separated item *names* (`*` or an empty list = all items);
//       blank lines and lines starting with '#' are skipped. The whole
//       file is executed --repeat times (default 2, so the second pass
//       exercises the warm cache) in batches of B queries (default: one
//       batch), and a per-pass throughput/latency/hit-rate table plus a
//       final detailed report are printed.
//   serve   --in=FILE --listen=PORT [--host=ADDR] [--index=FILE.idx]
//           [--threads=T] [--build-threads=B] [--cache-mb=M]
//           [--max-conns=C] [--max-nodes=N] [--no-reload]
//           [--compose-min-us=U] [--no-update] [--update-threads=T]
//           [--watch=FILE.idx] [--watch-ms=M]
//       Long-lived server mode (mutually exclusive with --workload):
//       answer remote clients over the TCF1 line protocol
//       (docs/serve-protocol.md) on ADDR:PORT (default 127.0.0.1;
//       PORT 0 = kernel-assigned, printed on startup). Connections are
//       parked in an epoll event loop (idle ones cost a file
//       descriptor, not a thread); T workers (default 4) execute ready
//       requests; C caps open connections (default 0 = unlimited).
//       RELOAD lets a client hot-swap in a rebuilt index unless
//       --no-reload is given. The UPDATE verb streams transaction/edge
//       insertions into the live index through the incremental
//       maintainer (core/tc_tree_update.h) unless --no-update is given
//       (--update-threads sizes its re-peel pool, default
//       --build-threads). --watch polls FILE.idx every M ms (default
//       500) and hot-swaps each new version in — reload-on-write, no
//       client needed. SIGINT/SIGTERM shut down gracefully and print
//       the final serving report.
//   client  --port=PORT [--host=ADDR] [--ping] [--reload=FILE.idx]
//           [--query=LINE] [--explain=LINE] [--batch=FILE]
//           [--batch-size=B] [--workload=FILE] [--stats] [--metrics]
//           [--update-tx=V:a,b;...] [--update-edge=U-V;...]
//       Connect to a running `tcf serve --listen` server and run the
//       given actions in order (ping, reload, update, query, explain,
//       batch, workload, stats, metrics), always ending with QUIT.
//       --query takes one `alpha;item,...` line and prints the returned
//       communities; --explain answers the same line server-side but
//       prints its stage-timed trace (docs/observability.md); --batch
//       streams a workload file as pipelined `BATCH` exchanges of B
//       queries per round trip (default 128); --workload streams it one
//       request per round trip and prints one count per query;
//       --metrics scrapes the server's registry and prints the
//       Prometheus text exposition verbatim. --update-tx appends
//       transactions (`vertex:name,name`; ';'-separated for several)
//       and --update-edge inserts edges (`u-v;...`); both ride in ONE
//       atomic UPDATE exchange and print the server's apply summary.
//       Exits non-zero if any action fails.
//
// Global flags (any subcommand):
//   --log-level=debug|info|warn|error
//       Minimum severity of TCF_LOG lines on stderr (default: info).
//       debug makes the server narrate accepts/closes per connection.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "core/communities.h"
#include "core/tc_tree.h"
#include "core/tc_tree_io.h"
#include "core/tc_tree_query.h"
#include "core/tc_tree_snapshot.h"
#include "core/tcfi_format.h"
#include "core/tcfa.h"
#include "core/tcfi.h"
#include "core/tcs.h"
#include "gen/checkin_generator.h"
#include "gen/coauthor_generator.h"
#include "gen/syn_generator.h"
#include "net/network_io.h"
#include "net/stats.h"
#include "core/tc_tree_update.h"
#include "serve/client.h"
#include "serve/file_watcher.h"
#include "serve/line_protocol.h"
#include "serve/query_backend.h"
#include "serve/query_service.h"
#include "serve/shard_router.h"
#include "serve/tcp_server.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace tcf;

namespace {

// Minimal --key=value parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (!StartsWith(arg, "--")) continue;
      auto eq = arg.find('=');
      if (eq == std::string::npos) kv_[arg.substr(2)] = "true";
      else kv_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  std::string Get(const std::string& key, const std::string& dflt) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? dflt : it->second;
  }
  double GetDouble(const std::string& key, double dflt) const {
    auto it = kv_.find(key);
    if (it == kv_.end()) return dflt;
    auto v = ParseDouble(it->second);
    return v.ok() ? *v : dflt;
  }
  uint64_t GetUint(const std::string& key, uint64_t dflt) const {
    auto it = kv_.find(key);
    if (it == kv_.end()) return dflt;
    auto v = ParseUint64(it->second);
    return v.ok() ? *v : dflt;
  }

 private:
  std::map<std::string, std::string> kv_;
};

/// Applies the global --log-level flag (scanned over the whole argv so
/// it works in any position, before or after the subcommand). Returns
/// false on an unknown level name, after printing the choices.
bool ApplyLogLevel(int argc, char** argv) {
  constexpr std::string_view kFlag = "--log-level=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!StartsWith(arg, kFlag)) continue;
    const std::string_view level = arg.substr(kFlag.size());
    if (level == "debug") SetLogLevel(LogLevel::kDebug);
    else if (level == "info") SetLogLevel(LogLevel::kInfo);
    else if (level == "warn") SetLogLevel(LogLevel::kWarn);
    else if (level == "error") SetLogLevel(LogLevel::kError);
    else {
      std::fprintf(stderr,
                   "tcf: --log-level=%.*s is not one of "
                   "debug|info|warn|error\n",
                   static_cast<int>(level.size()), level.data());
      return false;
    }
  }
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tcf <generate|stats|mine|index|query|serve|client> "
               "[--key=value ...] [--log-level=debug|info|warn|error]\n"
               "  generate --kind=bk|gw|aminer|syn --out=FILE [--scale=S] "
               "[--seed=N]\n"
               "  stats    --in=FILE\n"
               "  mine     --in=FILE [--alpha=A] [--method=tcfi|tcfa|tcs] "
               "[--epsilon=E] [--max-len=K] [--top=N]\n"
               "  index    --in=FILE --out=FILE.idx [--format=tcft|tcfi] "
               "[--slices=N] [--build-threads=T] [--max-nodes=N] "
               "[--verbose]\n"
               "  query    --in=FILE [--index=FILE.idx] [--alpha=A] "
               "[--items=a,b,c] [--build-threads=T]\n"
               "  serve    --in=FILE --workload=FILE [--index=FILE.idx] "
               "[--threads=T] [--build-threads=B] [--cache-mb=M] "
               "[--repeat=R] [--batch=B] [--max-nodes=N] "
               "[--shards=N] [--compose-min-us=U] [--slow-us=U] "
               "[--no-trace] [--trace-sample=N]\n"
               "  serve    --in=FILE --listen=PORT [--host=ADDR] "
               "[--index=FILE.idx] [--threads=T] [--build-threads=B] "
               "[--cache-mb=M] [--max-conns=C] [--max-nodes=N] "
               "[--shards=N] [--no-reload] [--compose-min-us=U] "
               "[--slow-us=U] [--no-trace] [--trace-sample=N] "
               "[--no-update] [--update-threads=T] [--watch=FILE.idx] "
               "[--watch-ms=M] [--default-deadline-ms=D] "
               "[--rate-limit-qps=Q] [--rate-limit-burst=B] "
               "[--shed-watermark=W]\n"
               "  client   --port=PORT [--host=ADDR] [--ping] "
               "[--reload=FILE.idx] [--query=LINE] [--explain=LINE] "
               "[--batch=FILE] [--batch-size=B] [--workload=FILE] "
               "[--stats] [--metrics] [--update-tx=V:a,b;...] "
               "[--update-edge=U-V;...]\n");
  return 2;
}

int CmdGenerate(const Args& args) {
  const std::string kind = args.Get("kind", "bk");
  const std::string out = args.Get("out", "");
  const double scale = args.GetDouble("scale", 1.0);
  const uint64_t seed = args.GetUint("seed", 42);
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out=FILE is required\n");
    return 2;
  }

  std::optional<DatabaseNetwork> net;
  if (kind == "bk" || kind == "gw") {
    CheckinParams p;
    const double size = kind == "gw" ? 2.0 : 1.0;
    p.num_users = static_cast<size_t>(1000 * scale * size);
    p.num_locations = static_cast<size_t>(200 * scale * size);
    p.periods_per_user = 25;
    p.seed = seed;
    net.emplace(GenerateCheckinNetwork(p));
  } else if (kind == "aminer") {
    CoauthorParams p;
    p.num_groups = static_cast<size_t>(100 * scale);
    p.seed = seed;
    net.emplace(std::move(GenerateCoauthorNetwork(p).network));
  } else if (kind == "syn") {
    SynParams p;
    p.num_vertices = static_cast<size_t>(2000 * scale);
    p.num_edges = static_cast<size_t>(10000 * scale);
    p.num_items = static_cast<size_t>(1500 * scale);
    p.seed = seed;
    net.emplace(GenerateSynNetwork(p));
  } else {
    std::fprintf(stderr, "generate: unknown --kind=%s\n", kind.c_str());
    return 2;
  }

  if (Status s = SaveNetworkToFile(*net, out); !s.ok()) {
    std::fprintf(stderr, "generate: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu vertices, %zu edges)\n", out.c_str(),
              net->num_vertices(), net->num_edges());
  return 0;
}

StatusOr<DatabaseNetwork> LoadArg(const Args& args) {
  const std::string in = args.Get("in", "");
  if (in.empty()) return Status::InvalidArgument("--in=FILE is required");
  return LoadNetworkFromFile(in);
}

int CmdStats(const Args& args) {
  auto net = LoadArg(args);
  if (!net.ok()) {
    std::fprintf(stderr, "stats: %s\n", net.status().ToString().c_str());
    return 1;
  }
  NetworkStats s = ComputeStats(*net);
  std::printf("vertices:        %llu\n",
              static_cast<unsigned long long>(s.num_vertices));
  std::printf("edges:           %llu\n",
              static_cast<unsigned long long>(s.num_edges));
  std::printf("transactions:    %llu\n",
              static_cast<unsigned long long>(s.num_transactions));
  std::printf("items (total):   %llu\n",
              static_cast<unsigned long long>(s.num_items_total));
  std::printf("items (unique):  %llu\n",
              static_cast<unsigned long long>(s.num_items_unique));
  std::printf("avg degree:      %.2f\n", s.avg_degree);
  std::printf("avg tx/vertex:   %.2f\n", s.avg_transactions_per_vertex);
  std::printf("avg tx length:   %.2f\n", s.avg_transaction_length);
  return 0;
}

int CmdMine(const Args& args) {
  auto net = LoadArg(args);
  if (!net.ok()) {
    std::fprintf(stderr, "mine: %s\n", net.status().ToString().c_str());
    return 1;
  }
  const double alpha = args.GetDouble("alpha", 0.1);
  const std::string method = args.Get("method", "tcfi");
  const size_t max_len = args.GetUint("max-len", 0);
  const size_t top = args.GetUint("top", 20);

  WallTimer t;
  MiningResult result;
  if (method == "tcfi") {
    result = RunTcfi(*net, {.alpha = alpha, .max_pattern_length = max_len});
  } else if (method == "tcfa") {
    result = RunTcfa(*net, {.alpha = alpha, .max_pattern_length = max_len});
  } else if (method == "tcs") {
    result = RunTcs(*net, {.alpha = alpha,
                           .epsilon = args.GetDouble("epsilon", 0.1),
                           .max_pattern_length = max_len});
  } else {
    std::fprintf(stderr, "mine: unknown --method=%s\n", method.c_str());
    return 2;
  }
  auto communities = ExtractThemeCommunities(result.trusses);
  std::printf("%s(alpha=%.3f): %zu trusses, %zu communities in %.2f s\n",
              method.c_str(), alpha, result.trusses.size(),
              communities.size(), t.Seconds());

  std::stable_sort(communities.begin(), communities.end(),
                   [](const ThemeCommunity& a, const ThemeCommunity& b) {
                     return a.vertices.size() > b.vertices.size();
                   });
  for (size_t i = 0; i < std::min(top, communities.size()); ++i) {
    const auto& c = communities[i];
    std::printf("  %-40s %4zu members %4zu edges\n",
                net->dictionary().Render(c.theme).c_str(), c.vertices.size(),
                c.edges.size());
  }
  return 0;
}

/// Build-thread count for in-process index builds: --build-threads,
/// falling back to --threads (which sized these builds before
/// --build-threads existed, and still sizes the serve worker pool),
/// then to hardware concurrency (every TC-Tree layer is parallel).
size_t BuildThreadsArg(const Args& args) {
  return args.GetUint("build-threads",
                      args.GetUint("threads", HardwareThreads()));
}

int CmdIndex(const Args& args) {
  auto net = LoadArg(args);
  if (!net.ok()) {
    std::fprintf(stderr, "index: %s\n", net.status().ToString().c_str());
    return 1;
  }
  const std::string out = args.Get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "index: --out=FILE is required\n");
    return 2;
  }
  const size_t build_threads = BuildThreadsArg(args);
  const bool verbose = args.Get("verbose", "") == "true";
  MetricsRegistry build_metrics;
  WallTimer t;
  TcTree tree = TcTree::Build(
      *net, {.num_threads = build_threads,
             .max_nodes = args.GetUint("max-nodes", 2000000),
             .metrics = verbose ? &build_metrics : nullptr});
  std::printf("built TC-Tree: %zu nodes in %.2f s (%zu threads)%s\n",
              tree.num_nodes(), t.Seconds(), build_threads,
              tree.build_stats().truncated ? " (node budget hit)" : "");
  if (verbose) {
    // The build's shape, wave by wave: a wide layer-1 frontier that
    // narrows as Prop-5.2 prunes take hold is healthy; a wave whose
    // wall time dwarfs its neighbours is where the dense patterns live.
    TextTable waves({"wave", "depth", "frontier", "nodes added", "ms"});
    for (size_t i = 0; i < tree.build_stats().waves.size(); ++i) {
      const TcTreeWaveStats& w = tree.build_stats().waves[i];
      waves.AddRow({TextTable::Num(static_cast<uint64_t>(i)),
                    TextTable::Num(static_cast<uint64_t>(w.depth)),
                    TextTable::Num(static_cast<uint64_t>(w.frontier_width)),
                    TextTable::Num(w.nodes_added),
                    TextTable::Num(w.wall_ms)});
    }
    waves.Print(std::cout);
    std::printf("\nbuild metrics (tcf_build_*):\n%s",
                build_metrics.Render().c_str());
  }
  std::string format = args.Get("format", "");
  if (format.empty()) format = EndsWith(out, ".tcfi") ? "tcfi" : "tcft";
  if (format != "tcft" && format != "tcfi") {
    std::fprintf(stderr, "index: --format=%s is not tcft|tcfi\n",
                 format.c_str());
    return 2;
  }
  const size_t slices = args.GetUint("slices", 0);
  if (slices >= 2 && format != "tcfi") {
    std::fprintf(stderr, "index: --slices=N needs --format=tcfi\n");
    return 2;
  }
  if (Status s = format == "tcfi" ? SaveTcTreeBinary(tree, out)
                                  : SaveTcTreeToFile(tree, out);
      !s.ok()) {
    std::fprintf(stderr, "index: %s\n", s.ToString().c_str());
    return 1;
  }
  if (slices >= 2) {
    if (Status s = SaveTcfiShardSlices(TcTree(tree), out, slices); !s.ok()) {
      std::fprintf(stderr, "index: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%s) + %zu shard slices\n", out.c_str(),
                format.c_str(), slices);
  } else {
    std::printf("wrote %s (%s)\n", out.c_str(), format.c_str());
  }
  return 0;
}

/// Shared by query/serve: load a persisted TC-Tree when --index=FILE is
/// given — a TCFI file (sniffed by magic) is mmap'ed and served
/// zero-copy, a TCFT file is parsed into an owned tree — otherwise
/// build one in-process over `BuildThreadsArg` workers. Prints what it
/// did — including the build/load wall time an operator compares
/// against the `last_reload_ms` STATS key — and returns nullopt (after
/// printing the error) on a failed load.
std::optional<TcTreeSnapshot> LoadOrBuildSnapshot(const Args& args,
                                                  const DatabaseNetwork& net,
                                                  const char* cmd) {
  WallTimer t;
  const std::string index_path = args.Get("index", "");
  if (!index_path.empty()) {
    if (LooksLikeTcfiFile(index_path)) {
      auto mapped = MapTcTree(index_path);
      if (!mapped.ok()) {
        std::fprintf(stderr, "%s: %s\n", cmd,
                     mapped.status().ToString().c_str());
        return std::nullopt;
      }
      std::printf("TC-Tree: %zu nodes mapped zero-copy from %s in %.3f s\n",
                  mapped->num_nodes(), index_path.c_str(), t.Seconds());
      return TcTreeSnapshot(std::move(*mapped));
    }
    auto loaded = LoadTcTreeFromFile(index_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s: %s\n", cmd,
                   loaded.status().ToString().c_str());
      return std::nullopt;
    }
    std::printf("TC-Tree: %zu nodes loaded from %s in %.2f s\n",
                loaded->num_nodes(), index_path.c_str(), t.Seconds());
    return TcTreeSnapshot(std::move(*loaded));
  }
  const size_t build_threads = BuildThreadsArg(args);
  TcTree tree = TcTree::Build(
      net, {.num_threads = build_threads,
            .max_nodes = args.GetUint("max-nodes", 2000000)});
  std::printf("TC-Tree: %zu nodes built in %.2f s (%zu threads)%s\n",
              tree.num_nodes(), t.Seconds(), build_threads,
              tree.build_stats().truncated ? " (node budget hit)" : "");
  return TcTreeSnapshot(std::move(tree));
}

/// LoadOrBuildSnapshot for callers that must *own* the tree (the shard
/// partitioner and the streaming updater's baseline): a mapped TCFI
/// snapshot is materialized onto the heap.
std::optional<TcTree> LoadOrBuildTree(const Args& args,
                                      const DatabaseNetwork& net,
                                      const char* cmd) {
  std::optional<TcTreeSnapshot> snap = LoadOrBuildSnapshot(args, net, cmd);
  if (!snap) return std::nullopt;
  return std::move(*snap).TakeTree();
}

int CmdQuery(const Args& args) {
  auto net = LoadArg(args);
  if (!net.ok()) {
    std::fprintf(stderr, "query: %s\n", net.status().ToString().c_str());
    return 1;
  }
  const double alpha = args.GetDouble("alpha", 0.0);

  Itemset q;
  const std::string items = args.Get("items", "");
  if (items.empty()) {
    q = Itemset(net->ActiveItems());
  } else {
    std::vector<ItemId> ids;
    for (const std::string& name : Split(items, ',')) {
      auto id = net->dictionary().Find(std::string(Trim(name)));
      if (!id.ok()) {
        std::fprintf(stderr, "query: %s\n", id.status().ToString().c_str());
        return 1;
      }
      ids.push_back(*id);
    }
    q = Itemset(std::move(ids));
  }

  std::optional<TcTreeSnapshot> snap = LoadOrBuildSnapshot(args, *net, "query");
  if (!snap) return 1;

  WallTimer qt;
  TcTreeQueryResult r = snap->Query(q, alpha);
  std::printf("query(alpha=%.3f, |q|=%zu): %llu trusses in %.3f ms\n", alpha,
              q.size(), static_cast<unsigned long long>(r.retrieved_nodes),
              qt.Millis());
  size_t shown = 0;
  for (const PatternTruss& truss : r.trusses) {
    std::printf("  %-40s |V|=%4zu |E|=%4zu\n",
                net->dictionary().Render(truss.pattern).c_str(),
                truss.num_vertices(), truss.num_edges());
    if (++shown == 20) {
      if (r.trusses.size() > shown) {
        std::printf("  ... and %zu more\n", r.trusses.size() - shown);
      }
      break;
    }
  }
  return 0;
}

/// The observability knobs both serve modes share: --no-trace turns
/// request-scoped tracing off (flat counters only), --slow-us moves the
/// slow-query ring threshold (default 10000), --trace-sample=N keeps
/// every Nth query's trace (EXPLAIN always traces).
void ApplyTracingArgs(const Args& args, QueryServiceOptions* options) {
  options->tracing = args.Get("no-trace", "") != "true";
  options->slow_query_us =
      args.GetDouble("slow-us", options->slow_query_us);
  options->trace_sample_every =
      std::max<uint64_t>(1, args.GetUint("trace-sample", 1));
}

/// Builds the serving backend both serve modes share, loading or
/// building the index itself: a single-tree QueryService (serving a
/// mapped TCFI snapshot zero-copy when --index points at one) or, with
/// --shards=N (N >= 2), the scatter-gather ShardedQueryService over N
/// item-space shards (rolling RELOAD, per-shard caches; see
/// docs/architecture.md). Sharded serving prefers the N per-shard TCFI
/// slice files `TcfiSlicePath(--index, s, N)` (written by `tcf index
/// --format=tcfi --slices=N`) — each shard maps its own slice, no
/// partitioning work. When `baseline` is non-null (the streaming
/// updater needs an owned whole-tree copy of what is being served) it
/// is filled and the slice path is skipped — slices cannot reconstruct
/// the whole tree. Returns null after printing the error.
std::unique_ptr<QueryBackend> MakeServeBackend(
    const Args& args, const DatabaseNetwork& net,
    const QueryServiceOptions& options, std::optional<TcTree>* baseline) {
  const size_t shards = args.GetUint("shards", 1);
  if (shards >= 2) {
    const std::string index_path = args.Get("index", "");
    if (baseline == nullptr && !index_path.empty()) {
      bool all_slices = true;
      for (size_t s = 0; s < shards && all_slices; ++s) {
        all_slices = LooksLikeTcfiFile(TcfiSlicePath(index_path, s, shards));
      }
      if (all_slices) {
        WallTimer t;
        auto sharded = ShardedQueryService::OpenSlices(
            index_path, net.dictionary(), shards, options);
        if (!sharded.ok()) {
          std::fprintf(stderr, "serve: %s\n",
                       sharded.status().ToString().c_str());
          return nullptr;
        }
        std::printf(
            "TC-Tree: %zu shard slices of %s mapped zero-copy in %.3f s\n",
            shards, index_path.c_str(), t.Seconds());
        return std::move(*sharded);
      }
    }
    std::optional<TcTree> tree = LoadOrBuildTree(args, net, "serve");
    if (!tree) return nullptr;
    if (baseline != nullptr) *baseline = *tree;
    return std::make_unique<ShardedQueryService>(
        std::move(*tree), net.dictionary(), shards, options);
  }
  std::optional<TcTreeSnapshot> snap = LoadOrBuildSnapshot(args, net, "serve");
  if (!snap) return nullptr;
  if (baseline != nullptr) *baseline = snap->MaterializeTree();
  return std::make_unique<QueryService>(std::move(*snap), net.dictionary(),
                                        options);
}

/// Dumps the slow-query ring after a serving run (no-op when empty —
/// tracing off, or nothing crossed the threshold).
void PrintSlowQueries(const QueryBackend& service) {
  const std::vector<SlowQueryLog::Entry> entries =
      service.slow_log().Snapshot();
  if (entries.empty()) return;
  std::printf("\nslow queries (>= %.0f us; %llu recorded, newest last):\n",
              service.slow_log().threshold_us(),
              static_cast<unsigned long long>(
                  service.slow_log().total_recorded()));
  TextTable slow({"#", "total(us)", "walk(us)", "visited", "pruned", "src",
                  "query"});
  for (const SlowQueryLog::Entry& e : entries) {
    const double walk_us =
        e.trace.stage_wall_us[static_cast<size_t>(QueryStage::kWalk)];
    slow.AddRow({TextTable::Num(e.seq), TextTable::Num(e.trace.total_us),
                 TextTable::Num(walk_us), TextTable::Num(e.trace.visited_nodes),
                 TextTable::Num(e.trace.pruned_subtrees),
                 e.trace.cache_hit    ? "hit"
                 : e.trace.composed ? "composed"
                                    : "walk",
                 e.query_line});
  }
  slow.Print(std::cout);
}

/// Set by SIGINT/SIGTERM; polled by the --listen serve loop.
volatile std::sig_atomic_t g_stop = 0;
void HandleStopSignal(int) { g_stop = 1; }

/// `tcf serve --listen=PORT`: long-lived line-protocol server over a
/// QueryService (see docs/serve-protocol.md). Returns on SIGINT/SIGTERM
/// after a graceful TcpServer::Shutdown. Takes the network by value:
/// the streaming updater becomes its owner (UPDATE mutates it).
int ServeListen(const Args& args, DatabaseNetwork net,
                const std::string& listen) {
  auto port = ParseUint64(listen);
  if (!port.ok() || *port > 65535) {
    std::fprintf(stderr, "serve: --listen=%s is not a port (0-65535)\n",
                 listen.c_str());
    return 2;
  }
  const size_t threads = args.GetUint("threads", 4);
  const size_t cache_mb = args.GetUint("cache-mb", 64);

  QueryServiceOptions service_options;
  service_options.num_threads = threads;
  service_options.cache_bytes = cache_mb << 20;
  service_options.cache_compose_min_walk_us =
      args.GetDouble("compose-min-us", 100.0);
  ApplyTracingArgs(args, &service_options);
  const size_t shards = args.GetUint("shards", 1);
  // Streaming updates need an owned copy of the served tree as the
  // updater's baseline; the backend factory fills it while it still
  // has the tree in hand.
  const bool allow_update = args.Get("no-update", "") != "true";
  std::optional<TcTree> updater_tree;
  std::unique_ptr<QueryBackend> backend = MakeServeBackend(
      args, net, service_options, allow_update ? &updater_tree : nullptr);
  if (!backend) return 1;
  QueryBackend& service = *backend;

  // The updater owns the authoritative network and sinks every
  // incrementally rebuilt snapshot into the backend's shard-aware
  // swap; its build options pin the replay to the served tree's.
  // Destroyed before the backend (declared after), after the server
  // (declared before) — both reference it.
  std::unique_ptr<IndexUpdater> updater;
  if (allow_update) {
    TcTreeOptions update_options;
    update_options.num_threads =
        args.GetUint("update-threads", BuildThreadsArg(args));
    update_options.max_nodes = args.GetUint("max-nodes", 2000000);
    updater = std::make_unique<IndexUpdater>(
        std::move(net), std::move(*updater_tree),
        [&service](TcTree t, const std::vector<ItemId>& roots,
                   const std::vector<ItemId>& dirty) {
          return service.ApplyUpdatedSnapshot(std::move(t), roots, dirty);
        },
        update_options);
  }

  TcpServerOptions server_options;
  server_options.bind_address = args.Get("host", "127.0.0.1");
  server_options.port = static_cast<uint16_t>(*port);
  server_options.num_threads = threads;
  server_options.max_connections = args.GetUint("max-conns", 0);
  server_options.allow_reload = args.Get("no-reload", "") != "true";
  server_options.updater = updater.get();
  // Overload-protection knobs (docs/robustness.md); all default off.
  server_options.default_deadline_ms = args.GetUint("default-deadline-ms", 0);
  server_options.rate_limit_qps = args.GetDouble("rate-limit-qps", 0.0);
  server_options.rate_limit_burst = args.GetDouble("rate-limit-burst", 0.0);
  server_options.shed_watermark = args.GetUint("shed-watermark", 0);
  TcpServer server(service, server_options);
  // Handlers go in *before* the listening banner: a supervisor that
  // greps the log and immediately signals must still get the graceful
  // path.
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "serve: %s\n", s.ToString().c_str());
    return 1;
  }

  // Reload-on-write: watch an index file and hot-swap each new version
  // (the push-free counterpart of the RELOAD verb).
  std::unique_ptr<FileWatcher> watcher;
  if (const std::string watch = args.Get("watch", ""); !watch.empty()) {
    FileWatcherOptions watch_options;
    watch_options.path = watch;
    watch_options.poll_ms = args.GetDouble("watch-ms", 500.0);
    watcher = std::make_unique<FileWatcher>(service, watch_options);
    if (Status s = watcher->Start(); !s.ok()) {
      std::fprintf(stderr, "serve: watch: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("serve: watching %s (every %.0f ms)\n", watch.c_str(),
                watch_options.poll_ms);
  }

  std::printf("serve: listening on %s:%u (epoll loop, %zu workers, "
              "%zu MiB cache, %zu shard%s, reload %s, update %s)\n",
              server.bind_address().c_str(), server.port(), threads,
              cache_mb, std::max<size_t>(1, shards), shards >= 2 ? "s" : "",
              server_options.allow_reload ? "on" : "off",
              allow_update ? "on" : "off");
  std::fflush(stdout);  // the smoke test greps a redirected log for this

  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("serve: shutting down\n");
  if (watcher) watcher->Stop();
  server.Shutdown();
  service.Report().ToTable().Print(std::cout);
  PrintSlowQueries(service);
  return 0;
}

int CmdServe(const Args& args) {
  auto net = LoadArg(args);
  if (!net.ok()) {
    std::fprintf(stderr, "serve: %s\n", net.status().ToString().c_str());
    return 1;
  }
  const std::string workload_path = args.Get("workload", "");
  const std::string listen = args.Get("listen", "");
  if (!listen.empty() && !workload_path.empty()) {
    std::fprintf(stderr,
                 "serve: --listen and --workload are mutually exclusive\n");
    return 2;
  }
  if (!listen.empty()) return ServeListen(args, std::move(*net), listen);
  if (workload_path.empty()) {
    std::fprintf(stderr,
                 "serve: --workload=FILE or --listen=PORT is required\n");
    return 2;
  }
  const size_t threads = args.GetUint("threads", 4);
  const size_t cache_mb = args.GetUint("cache-mb", 64);
  const size_t repeat = std::max<uint64_t>(1, args.GetUint("repeat", 2));
  const size_t batch = args.GetUint("batch", 0);

  // Parse the workload before touching the index: a typo'd path or a
  // malformed line must fail in milliseconds, not after a tree build.
  std::ifstream in(workload_path);
  if (!in) {
    std::fprintf(stderr, "serve: cannot open workload %s\n",
                 workload_path.c_str());
    return 1;
  }
  std::vector<ServeQuery> workload;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto query = ParseServeQuery(net->dictionary(), trimmed);
    if (!query.ok()) {
      std::fprintf(stderr, "serve: %s:%zu: %s\n", workload_path.c_str(),
                   line_no, query.status().ToString().c_str());
      return 1;
    }
    workload.push_back(std::move(*query));
  }
  if (workload.empty()) {
    std::fprintf(stderr, "serve: workload %s has no queries\n",
                 workload_path.c_str());
    return 1;
  }

  QueryServiceOptions service_options;
  service_options.num_threads = threads;
  service_options.cache_bytes = cache_mb << 20;
  service_options.cache_compose_min_walk_us =
      args.GetDouble("compose-min-us", 100.0);
  ApplyTracingArgs(args, &service_options);
  const size_t shards = args.GetUint("shards", 1);
  std::unique_ptr<QueryBackend> backend =
      MakeServeBackend(args, *net, service_options, nullptr);
  if (!backend) return 1;
  QueryBackend& service = *backend;
  std::printf(
      "serving %zu queries x%zu passes, %zu threads, %zu MiB cache, "
      "%zu shard%s\n",
      workload.size(), repeat, service.num_threads(), cache_mb,
      std::max<size_t>(1, shards), shards >= 2 ? "s" : "");

  // Pre-split the workload into batches outside the timed passes so the
  // reported throughput measures serving, not vector copies.
  std::vector<std::vector<ServeQuery>> batches;
  if (batch == 0) {
    batches.push_back(workload);
  } else {
    for (size_t i = 0; i < workload.size(); i += batch) {
      batches.emplace_back(
          workload.begin() + i,
          workload.begin() + std::min(workload.size(), i + batch));
    }
  }

  TextTable passes(
      {"pass", "queries", "time(s)", "q/s", "p50(us)", "p99(us)", "hit rate"});
  ServeReport last;
  for (size_t pass = 0; pass < repeat; ++pass) {
    const ResultCacheStats before = service.cache_stats();
    service.stats().Reset();
    for (const std::vector<ServeQuery>& b : batches) {
      service.ExecuteBatch(b);
    }
    last = service.Report();
    // Scope the cumulative cache counters to this pass (entries/bytes
    // are point-in-time and stay as-is), so the final report agrees
    // with the per-pass table.
    ResultCacheStats delta = last.cache;
    delta.hits -= before.hits;
    delta.misses -= before.misses;
    delta.inserts -= before.inserts;
    delta.evictions -= before.evictions;
    last.cache = delta;
    passes.AddRow({pass == 0 ? "cold" : StrFormat("warm%zu", pass),
                   TextTable::Num(last.queries),
                   TextTable::Num(last.wall_seconds),
                   TextTable::Num(last.qps), TextTable::Num(last.p50_us),
                   TextTable::Num(last.p99_us),
                   TextTable::Num(delta.HitRate())});
  }
  passes.Print(std::cout);
  std::printf("\nfinal pass report:\n");
  last.ToTable().Print(std::cout);
  PrintSlowQueries(service);
  return 0;
}

/// Renders one wire truss like CmdQuery renders in-process ones.
void PrintWireTruss(const WireTruss& truss) {
  std::string names = "{";
  for (size_t i = 0; i < truss.pattern.size(); ++i) {
    if (i > 0) names += ", ";
    names += truss.pattern[i];
  }
  names += "}";
  std::printf("  %-40s |V|=%4zu |E|=%4zu\n", names.c_str(),
              truss.vertices.size(), truss.edges.size());
}

int CmdClient(const Args& args) {
  const uint64_t port = args.GetUint("port", 0);
  if (port == 0 || port > 65535) {
    std::fprintf(stderr, "client: --port=PORT (1-65535) is required\n");
    return 2;
  }
  auto client = Client::Connect(args.Get("host", "127.0.0.1"),
                                static_cast<uint16_t>(port));
  if (!client.ok()) {
    std::fprintf(stderr, "client: %s\n", client.status().ToString().c_str());
    return 1;
  }

  if (args.Get("ping", "") == "true") {
    if (Status s = (*client)->Ping(); !s.ok()) {
      std::fprintf(stderr, "client: ping: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("PONG\n");
  }

  if (const std::string path = args.Get("reload", ""); !path.empty()) {
    auto nodes = (*client)->Reload(path);
    if (!nodes.ok()) {
      std::fprintf(stderr, "client: reload: %s\n",
                   nodes.status().ToString().c_str());
      return 1;
    }
    std::printf("reloaded %s: %llu nodes\n", path.c_str(),
                static_cast<unsigned long long>(*nodes));
  }

  const std::string update_txs = args.Get("update-tx", "");
  const std::string update_edges = args.Get("update-edge", "");
  if (!update_txs.empty() || !update_edges.empty()) {
    // Both flags fold into ONE atomic UPDATE exchange: either the whole
    // batch lands or none of it does.
    std::vector<std::string> lines;
    for (const std::string& spec : Split(update_txs, ';')) {
      const std::string_view t = Trim(spec);
      if (t.empty()) continue;
      const size_t colon = t.find(':');
      if (colon == std::string_view::npos || colon == 0 ||
          colon + 1 == t.size()) {
        std::fprintf(stderr,
                     "client: --update-tx spec '%.*s' is not "
                     "'vertex:name,name,...'\n",
                     static_cast<int>(t.size()), t.data());
        return 2;
      }
      lines.push_back(StrFormat("tx %.*s %.*s", static_cast<int>(colon),
                                t.data(), static_cast<int>(t.size() - colon - 1),
                                t.data() + colon + 1));
    }
    for (const std::string& spec : Split(update_edges, ';')) {
      const std::string_view t = Trim(spec);
      if (t.empty()) continue;
      const size_t dash = t.find('-');
      if (dash == std::string_view::npos || dash == 0 ||
          dash + 1 == t.size()) {
        std::fprintf(stderr,
                     "client: --update-edge spec '%.*s' is not 'u-v'\n",
                     static_cast<int>(t.size()), t.data());
        return 2;
      }
      lines.push_back(StrFormat("edge %.*s %.*s", static_cast<int>(dash),
                                t.data(), static_cast<int>(t.size() - dash - 1),
                                t.data() + dash + 1));
    }
    auto summary = (*client)->Update(lines);
    if (!summary.ok()) {
      std::fprintf(stderr, "client: update: %s\n",
                   summary.status().ToString().c_str());
      return 1;
    }
    std::printf("updated (%zu line%s):\n", lines.size(),
                lines.size() == 1 ? "" : "s");
    for (const auto& [key, value] : *summary) {
      std::printf("%-22s %s\n", key.c_str(), value.c_str());
    }
  }

  if (const std::string query = args.Get("query", ""); !query.empty()) {
    auto trusses = (*client)->Query(query);
    if (!trusses.ok()) {
      std::fprintf(stderr, "client: query: %s\n",
                   trusses.status().ToString().c_str());
      return 1;
    }
    std::printf("query '%s': %zu communities\n", query.c_str(),
                trusses->size());
    for (const WireTruss& truss : *trusses) PrintWireTruss(truss);
  }

  if (const std::string query = args.Get("explain", ""); !query.empty()) {
    auto trace = (*client)->Explain(query);
    if (!trace.ok()) {
      std::fprintf(stderr, "client: explain: %s\n",
                   trace.status().ToString().c_str());
      return 1;
    }
    std::printf("explain '%s':\n", query.c_str());
    for (const auto& [key, value] : *trace) {
      std::printf("%-26s %s\n", key.c_str(), value.c_str());
    }
  }

  if (const std::string path = args.Get("batch", ""); !path.empty()) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "client: cannot open batch file %s\n",
                   path.c_str());
      return 1;
    }
    const size_t batch_size = std::max<uint64_t>(
        1, std::min<uint64_t>(args.GetUint("batch-size", 128),
                              kMaxBatchLines));
    std::vector<std::string> pending;
    std::string line;
    size_t queries = 0, trusses_total = 0, batches = 0;
    // Returns false (after printing) on a transport or per-slot error.
    auto flush = [&]() -> bool {
      if (pending.empty()) return true;
      auto items = (*client)->Batch(pending);
      if (!items.ok()) {
        std::fprintf(stderr, "client: batch: %s\n",
                     items.status().ToString().c_str());
        return false;
      }
      for (size_t i = 0; i < items->size(); ++i) {
        const Client::BatchItem& item = (*items)[i];
        if (!item.status.ok()) {
          std::fprintf(stderr, "client: batch: '%s': %s\n",
                       pending[i].c_str(), item.status.ToString().c_str());
          return false;
        }
        ++queries;
        trusses_total += item.trusses.size();
      }
      ++batches;
      pending.clear();
      return true;
    };
    while (std::getline(in, line)) {
      const std::string_view trimmed = Trim(line);
      if (trimmed.empty() || trimmed[0] == '#') continue;
      pending.emplace_back(trimmed);
      if (pending.size() == batch_size && !flush()) return 1;
    }
    if (!flush()) return 1;
    std::printf("batch %s: %zu queries in %zu round trip%s, "
                "%zu communities\n",
                path.c_str(), queries, batches, batches == 1 ? "" : "s",
                trusses_total);
  }

  if (const std::string path = args.Get("workload", ""); !path.empty()) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "client: cannot open workload %s\n", path.c_str());
      return 1;
    }
    std::string line;
    size_t line_no = 0, queries = 0, trusses_total = 0;
    while (std::getline(in, line)) {
      ++line_no;
      const std::string_view trimmed = Trim(line);
      if (trimmed.empty() || trimmed[0] == '#') continue;
      auto trusses = (*client)->Query(std::string(trimmed));
      if (!trusses.ok()) {
        std::fprintf(stderr, "client: %s:%zu: %s\n", path.c_str(), line_no,
                     trusses.status().ToString().c_str());
        return 1;
      }
      ++queries;
      trusses_total += trusses->size();
    }
    std::printf("workload %s: %zu queries, %zu communities\n", path.c_str(),
                queries, trusses_total);
  }

  if (args.Get("stats", "") == "true") {
    auto stats = (*client)->Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "client: stats: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    for (const auto& [key, value] : *stats) {
      std::printf("%-22s %s\n", key.c_str(), value.c_str());
    }
  }

  if (args.Get("metrics", "") == "true") {
    auto text = (*client)->Metrics();
    if (!text.ok()) {
      std::fprintf(stderr, "client: metrics: %s\n",
                   text.status().ToString().c_str());
      return 1;
    }
    // Verbatim: `tcf client --metrics > scrape.prom` IS a scrape.
    std::fputs(text->c_str(), stdout);
  }

  if (Status s = (*client)->Quit(); !s.ok()) {
    std::fprintf(stderr, "client: quit: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (!ApplyLogLevel(argc, argv)) return 2;
  const Args args(argc, argv);
  const std::string cmd = argv[1];
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "stats") return CmdStats(args);
  if (cmd == "mine") return CmdMine(args);
  if (cmd == "index") return CmdIndex(args);
  if (cmd == "query") return CmdQuery(args);
  if (cmd == "serve") return CmdServe(args);
  if (cmd == "client") return CmdClient(args);
  return Usage();
}
